package broker

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"gobad/internal/bdms"
	"gobad/internal/httpx"
	"gobad/internal/metrics"
	"gobad/internal/obs"
	"gobad/internal/obs/span"
	"gobad/internal/wsock"
)

// Server exposes the broker's two HTTP surfaces: the client-facing REST API
// (subscribe/unsubscribe/getresults/ack + WebSocket push) and the
// cluster-facing webhook callback, plus the Prometheus exposition at
// /metrics.
type Server struct {
	broker *Broker
	mux    *http.ServeMux
	obs    *httpx.Observer
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithObserver supplies the observability bundle (registry, logger, HTTP
// metrics). Without it NewServer builds a silent default, so /metrics
// always works.
func WithObserver(o *httpx.Observer) ServerOption {
	return func(s *Server) { s.obs = o }
}

// NewServer wraps a broker with its HTTP API.
func NewServer(b *Broker, opts ...ServerOption) *Server {
	s := &Server{broker: b, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	if s.obs == nil {
		s.obs = httpx.NewObserver("badbroker", nil)
	}
	// Wire the delivery-path tracing: the broker records spans into the
	// observer's ring and feeds the per-stage delivery-latency histogram.
	stages := span.NewStages(span.DefaultSlowThreshold, s.obs.Logger)
	s.obs.Registry.MustRegister(stages.Histogram())
	b.SetTracing(s.obs.Traces, stages)
	// The broker's cache accounting and manager structure are part of this
	// server's exposition.
	s.obs.Registry.MustRegister(
		obs.NewCacheStatsCollector(b.Stats(), b.Now),
		obs.NewManagerCollector(b.Manager()),
		obs.GaugeFunc("bad_frontend_subscriptions", "Live frontend subscriptions.",
			func() float64 { return float64(b.NumFrontendSubs()) }),
		obs.GaugeFunc("bad_backend_subscriptions", "Deduplicated backend subscriptions.",
			func() float64 { return float64(b.NumBackendSubs()) }),
		obs.GaugeFunc("bad_online_subscribers", "Subscribers with a live WebSocket session.",
			func() float64 { return float64(b.sessions.count()) }),
		// Counters read their atomics directly; only the depth gauge pays
		// for the per-session queue sweep, so a scrape does one O(sessions)
		// pass instead of five.
		obs.CounterFunc("bad_push_enqueued_total", "Push markers accepted into session queues.",
			func() float64 { return float64(b.sessions.stats.enqueued.Load()) }),
		obs.CounterFunc("bad_push_coalesced_total", "Push markers merged latest-wins into an already-queued marker.",
			func() float64 { return float64(b.sessions.stats.coalesced.Load()) }),
		obs.CounterFunc("bad_push_dropped_total", "Oldest pending push markers evicted on session queue overflow.",
			func() float64 { return float64(b.sessions.stats.dropped.Load()) }),
		obs.CounterFunc("bad_push_failures_total", "Push notification encode errors and failed socket writes.",
			func() float64 { return float64(b.sessions.stats.failures.Load()) }),
		obs.GaugeFunc("bad_push_queue_depth", "Pending push markers across live sessions.",
			func() float64 { return float64(b.sessions.queueDepth()) }),
		// Failover pipeline: resume/backfill/drain counters plus the (client
		// side, zero here) reconnect-latency summary.
		b.failover.Collector(),
		// Warm cache handoff: hit/miss on fresh backend subscriptions plus
		// snapshot intake accounting and the pending stash depth.
		obs.CounterFunc("bad_warmup_hits_total", "Fresh backend subscriptions seeded from a warm handoff.",
			func() float64 { return b.warmupStats.Hits.Value() }),
		obs.CounterFunc("bad_warmup_misses_total", "Fresh backend subscriptions that started cold.",
			func() float64 { return b.warmupStats.Misses.Value() }),
		obs.CounterFunc("bad_warmup_objects_total", "Cache objects restored from warm handoff entries.",
			func() float64 { return b.warmupStats.ObjectsLoaded.Value() }),
		obs.CounterFunc("bad_warmup_entries_applied_total", "Warm entries applied onto live subscriptions at intake.",
			func() float64 { return b.warmupStats.EntriesApplied.Value() }),
		obs.CounterFunc("bad_warmup_entries_stashed_total", "Warm entries parked for a future matching subscribe.",
			func() float64 { return b.warmupStats.EntriesStashed.Value() }),
		obs.CounterFunc("bad_warmup_entries_dropped_total", "Warm entries rejected (stale snapshot or stash budget).",
			func() float64 { return b.warmupStats.EntriesDropped.Value() }),
		obs.GaugeFunc("bad_warmup_stash_entries", "Warm entries awaiting a matching subscribe.",
			func() float64 { return float64(b.WarmStashSize()) }),
	)
	if b.FabricEnabled() {
		s.obs.Registry.MustRegister(b.FabricCollector())
	}
	s.routes()
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Observer returns the server's observability bundle.
func (s *Server) Observer() *httpx.Observer { return s.obs }

// route registers one instrumented endpoint under its /v1 path plus alias.
func (s *Server) route(method, pattern, legacy string, h http.HandlerFunc) {
	httpx.Dual(s.mux, method, pattern, legacy, s.obs.Wrap(pattern, h))
}

// routes registers every endpoint under its versioned /v1 path plus the
// pre-v1 alias (deprecated; kept for one release — see httpx.Dual). The
// WebSocket upgrade lives at /v1/ws (alias /ws).
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.obs.Wrap("/healthz", s.handleHealth))
	s.mux.Handle("GET /metrics", s.obs.MetricsHandler())
	s.mux.Handle("GET /v1/debug/traces", s.obs.Traces.Handler())
	s.route(http.MethodPost, "/v1/subscriptions", "/api/subscriptions", s.handleSubscribe)
	s.route(http.MethodDelete, "/v1/subscriptions/{fs}", "/api/subscriptions/{fs}", s.handleUnsubscribe)
	s.route(http.MethodGet, "/v1/subscriptions/{fs}/results", "/api/subscriptions/{fs}/results", s.handleGetResults)
	s.route(http.MethodPost, "/v1/subscriptions/{fs}/ack", "/api/subscriptions/{fs}/ack", s.handleAck)
	s.route(http.MethodGet, "/v1/subscribers/{id}/subscriptions", "/api/subscribers/{id}/subscriptions", s.handleListSubs)
	s.route(http.MethodGet, "/v1/stats", "/api/stats", s.handleStats)
	s.route(http.MethodGet, "/v1/caches", "/api/caches", s.handleCaches)
	s.route(http.MethodGet, "/v1/ws", "/ws", s.handleWS)
	s.route(http.MethodPost, "/v1/callbacks/results", "/callbacks/results", s.handleCallback)
	// Fabric peer protocol: new in /v1, no pre-v1 alias.
	s.route(http.MethodGet, "/v1/peer/results/{key}", "", s.handlePeerResults)
	s.route(http.MethodPost, "/v1/peer/warmup", "", s.handlePeerWarmup)
	// Versioned health: same handler, reachable under /v1 for fabric peers.
	s.mux.HandleFunc("GET /v1/healthz", s.obs.Wrap("/healthz", s.handleHealth))
}

// handleHealth reports liveness plus readiness: "warming" while the broker
// is still restoring warm state (BCS placement excludes it), "draining"
// during graceful shutdown, "ok" otherwise.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	switch {
	case s.broker.Draining():
		status = "draining"
	case s.broker.Warming():
		status = "warming"
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]string{
		"status": status, "broker": s.broker.ID(),
	})
}

// SubscribeRequest creates a frontend subscription. ResumeNS, when present,
// is the failover resume token: the newest result timestamp (ns) the
// subscriber already acknowledged on its previous broker. The broker
// backfills everything after it from the cluster's result dataset and
// re-arms live push (at-least-once; clients dedup by timestamp).
// ResumeToken is the string form of the same marker (see
// FormatResumeToken); when both are present the token wins, and a
// malformed or checksum-failing token rejects the request rather than
// resuming from a garbage offset.
type SubscribeRequest struct {
	Subscriber  string `json:"subscriber"`
	Channel     string `json:"channel"`
	Params      []any  `json:"params"`
	ResumeNS    *int64 `json:"resume_ns,omitempty"`
	ResumeToken string `json:"resume_token,omitempty"`
}

// SubscribeResponse returns the frontend subscription ID plus the shared
// backend subscription it attaches to; WebSocket push notifications carry
// the latter, so clients key their routing on it. LatestNS is the
// subscription's initial acknowledged marker — the client seeds its resume
// token from it so a failover before the first delivery resumes correctly.
type SubscribeResponse struct {
	FrontendSub string `json:"fs"`
	BackendSub  string `json:"bs"`
	LatestNS    int64  `json:"latest_ns"`
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req SubscribeRequest
	if err := httpx.ReadJSON(r, &req); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resume := NoResume
	if req.ResumeToken != "" {
		ts, err := ParseResumeToken(req.ResumeToken)
		if err != nil {
			httpx.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		resume = ts
	} else if req.ResumeNS != nil && *req.ResumeNS >= 0 {
		resume = time.Duration(*req.ResumeNS)
	}
	fs, err := s.broker.SubscribeResume(r.Context(), req.Subscriber, req.Channel, req.Params, resume)
	if err != nil {
		if errors.Is(err, ErrDraining) {
			// 503 is marked retryable in the envelope: the client's
			// supervisor rediscovers a broker and retries there.
			httpx.WriteError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	bs, _ := s.broker.BackendSubID(req.Subscriber, fs)
	marker, _ := s.broker.Marker(req.Subscriber, fs)
	httpx.WriteJSON(w, http.StatusCreated, SubscribeResponse{
		FrontendSub: fs, BackendSub: bs, LatestNS: int64(marker),
	})
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	subscriber := r.URL.Query().Get("subscriber")
	if err := s.broker.Unsubscribe(subscriber, r.PathValue("fs")); err != nil {
		httpx.WriteError(w, http.StatusNotFound, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, nil)
}

// ResultsResponse carries retrieved results and the marker to acknowledge.
type ResultsResponse struct {
	Results  []ResultItem `json:"results"`
	LatestNS int64        `json:"latest_ns"`
	// Stale marks a degraded answer served from the cache alone after a
	// data-cluster failure; the marker is 0 and older results may follow
	// once the cluster recovers.
	Stale bool `json:"stale,omitempty"`
}

func (s *Server) handleGetResults(w http.ResponseWriter, r *http.Request) {
	subscriber := r.URL.Query().Get("subscriber")
	ret, err := s.broker.RetrieveContext(r.Context(), subscriber, r.PathValue("fs"))
	if err != nil {
		httpx.WriteError(w, http.StatusNotFound, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, ResultsResponse{Results: ret.Items, LatestNS: int64(ret.Latest), Stale: ret.Stale})
}

// AckRequest advances a frontend subscription's marker.
type AckRequest struct {
	Subscriber  string `json:"subscriber"`
	TimestampNS int64  `json:"timestamp_ns"`
}

func (s *Server) handleAck(w http.ResponseWriter, r *http.Request) {
	var req AckRequest
	if err := httpx.ReadJSON(r, &req); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The ack is the trace's final leg: the client forwarded the push
	// frame's traceparent, so this span closes the delivery end to end.
	ctx, sp := s.obs.Traces.Start(r.Context(), "broker.client_ack")
	sp.SetAttr("subscriber", req.Subscriber)
	start := time.Now()
	err := s.broker.Ack(req.Subscriber, r.PathValue("fs"), time.Duration(req.TimestampNS))
	sp.SetError(err)
	sp.End()
	s.broker.stages.Observe(ctx, span.StageClientAck, span.OutcomeNone, time.Since(start))
	if err != nil {
		httpx.WriteError(w, http.StatusNotFound, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, nil)
}

func (s *Server) handleListSubs(w http.ResponseWriter, r *http.Request) {
	subs := s.broker.FrontendSubscriptions(r.PathValue("id"))
	httpx.WriteJSON(w, http.StatusOK, map[string][]string{"subscriptions": subs})
}

// StatsResponse is the broker's metrics snapshot plus table sizes.
type StatsResponse struct {
	Broker       string           `json:"broker"`
	Policy       string           `json:"policy"`
	BudgetBytes  int64            `json:"budget_bytes"`
	CachedBytes  int64            `json:"cached_bytes"`
	FrontendSubs int              `json:"frontend_subs"`
	BackendSubs  int              `json:"backend_subs"`
	Online       int              `json:"online_subscribers"`
	Metrics      metrics.Snapshot `json:"metrics"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	b := s.broker
	httpx.WriteJSON(w, http.StatusOK, StatsResponse{
		Broker:       b.ID(),
		Policy:       b.Manager().Policy().Name(),
		BudgetBytes:  b.Manager().Budget(),
		CachedBytes:  b.Manager().TotalSize(),
		FrontendSubs: b.NumFrontendSubs(),
		BackendSubs:  b.NumBackendSubs(),
		Online:       b.sessions.count(),
		Metrics:      b.Stats().SnapshotAt(b.Now()),
	})
}

func (s *Server) handleCaches(w http.ResponseWriter, _ *http.Request) {
	httpx.WriteJSON(w, http.StatusOK, map[string]any{"caches": s.broker.Manager().CacheInfos()})
}

// handleWS upgrades a subscriber's notification socket. The query parameter
// "subscriber" names the session. The connection is read-pumped so pings
// and client close frames are honored; incoming text messages are ignored.
func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	subscriber := r.URL.Query().Get("subscriber")
	if subscriber == "" {
		httpx.WriteError(w, http.StatusBadRequest, "subscriber query parameter required")
		return
	}
	if s.broker.Draining() {
		// Refuse before the upgrade: the retryable 503 sends the client back
		// to the BCS for a live broker.
		httpx.WriteError(w, http.StatusServiceUnavailable, "broker draining")
		return
	}
	conn, err := wsock.Upgrade(w, r)
	if err != nil {
		return // Upgrade already wrote the error
	}
	if !s.broker.AttachSession(subscriber, conn) {
		return // drain raced the upgrade; attach sent the migrate frame
	}
	defer s.broker.DetachSession(subscriber, conn)
	for {
		if _, _, err := conn.ReadMessage(); err != nil {
			_ = conn.Close()
			return
		}
	}
}

// handleCallback is the webhook the data cluster invokes on new results.
func (s *Server) handleCallback(w http.ResponseWriter, r *http.Request) {
	var p bdms.NotificationPayload
	if err := httpx.ReadJSON(r, &p); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var err error
	switch {
	case len(p.Results) > 0:
		err = s.broker.HandlePushedResultsContext(r.Context(), p.SubscriptionID, p.Results)
	case p.Result != nil:
		err = s.broker.HandlePushedResultContext(r.Context(), p.SubscriptionID, *p.Result)
	default:
		err = s.broker.HandleNotificationContext(r.Context(), p.SubscriptionID, time.Duration(p.LatestNS))
	}
	if err != nil {
		httpx.WriteError(w, http.StatusNotFound, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, nil)
}

// handlePeerResults answers a sibling broker's lookup for a fabric key,
// strictly from the local result cache (never a cluster fetch, so lookups
// cannot chain). The failure taxonomy rides the error envelope's code:
// peer_draining (503, retryable — the owner is shutting down and placement
// is about to move), peer_cold (404, not retryable — go to the cluster)
// and peer_loop (400, a chained lookup, refused outright). A dead owner
// needs no code: the caller sees the transport error.
func (s *Server) handlePeerResults(w http.ResponseWriter, r *http.Request) {
	if hop, _ := strconv.Atoi(r.Header.Get(bdms.PeerHopHeader)); hop > 1 {
		httpx.WriteErrorCode(w, http.StatusBadRequest, bdms.CodePeerLoop,
			"peer lookups must not chain (hop %d)", hop)
		return
	}
	if s.broker.Draining() {
		w.Header().Set("Retry-After", "1")
		httpx.WriteErrorCode(w, http.StatusServiceUnavailable, bdms.CodePeerDraining,
			"broker %s is draining", s.broker.ID())
		return
	}
	q := r.URL.Query()
	after, err1 := strconv.ParseInt(q.Get("after_ns"), 10, 64)
	before, err2 := strconv.ParseInt(q.Get("before_ns"), 10, 64)
	if err1 != nil || err2 != nil {
		httpx.WriteError(w, http.StatusBadRequest, "after_ns and before_ns are required integers")
		return
	}
	key := r.PathValue("key")
	resp, ok := s.broker.PeerResults(key,
		time.Duration(after), time.Duration(before), q.Get("inclusive") == "true")
	if !ok {
		httpx.WriteErrorCode(w, http.StatusNotFound, bdms.CodePeerCold,
			"broker %s cannot fully serve %s (%d, %d]", s.broker.ID(), key, after, before)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, resp)
}

// handlePeerWarmup ingests a draining predecessor's warm cache snapshot
// (fabric peer protocol). The body is size-capped; a draining receiver
// refuses — it is about to hand its own state off and must not absorb
// more. Stale snapshots are dropped inside InstallWarmup.
func (s *Server) handlePeerWarmup(w http.ResponseWriter, r *http.Request) {
	if s.broker.Draining() {
		w.Header().Set("Retry-After", "1")
		httpx.WriteErrorCode(w, http.StatusServiceUnavailable, bdms.CodePeerDraining,
			"broker %s is draining", s.broker.ID())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, 2*DefaultWarmupMaxBytes)
	var snap bdms.CacheSnapshot
	if err := httpx.ReadJSON(r, &snap); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, s.broker.InstallWarmup(r.Context(), snap))
}
