package broker

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"gobad/internal/obs"
	"gobad/internal/obs/span"
)

// spanNames collects the span names a recorder retained for one trace.
func spanNames(rec *span.Recorder, traceID string) map[string]span.Record {
	out := map[string]span.Record{}
	for _, tr := range rec.Snapshot() {
		if tr.TraceID != traceID {
			continue
		}
		for _, s := range tr.Spans {
			out[s.Name] = s
		}
	}
	return out
}

// TestPeerLookupSharesTrace: a traced retrieval that misses locally and is
// served by the owning sibling produces ONE trace across both brokers —
// the edge's cache.peer_hop and fabric.peer_lookup spans plus the owner's
// peer-protocol server span all carry the caller's trace ID.
func TestPeerLookupSharesTrace(t *testing.T) {
	env := newFabricEnv(t)
	edgeRec := span.NewRecorder("edge")
	stages := span.NewStages(span.DefaultSlowThreshold, nil)
	env.edge.SetTracing(edgeRec, stages)

	if _, err := env.owner.Subscribe("olga", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	fs, err := env.edge.Subscribe("edna", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	env.publish(t, "fire", 2)

	parent := obs.NewSpan()
	ctx := obs.ContextWithSpan(context.Background(), parent)
	ret, err := env.edge.RetrieveContext(ctx, "edna", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ret.Items) != 1 {
		t.Fatalf("got %d results, want 1", len(ret.Items))
	}
	if h := env.edge.Stats().PeerHits.Value(); h != 1 {
		t.Fatalf("peer hits = %v, want 1 (retrieval must have peer-hopped)", h)
	}

	traceID := parent.TraceIDString()
	edgeSpans := spanNames(edgeRec, traceID)
	if _, ok := edgeSpans["cache.peer_hop"]; !ok {
		t.Errorf("edge trace %s missing cache.peer_hop span, has %v", traceID, keys(edgeSpans))
	}
	if _, ok := edgeSpans["fabric.peer_lookup"]; !ok {
		t.Errorf("edge trace %s missing fabric.peer_lookup span, has %v", traceID, keys(edgeSpans))
	}
	ownerSpans := spanNames(env.ownerHTTP.Observer().Traces, traceID)
	if _, ok := ownerSpans["http /v1/peer/results/{key}"]; !ok {
		t.Errorf("owner recorder has no peer-protocol span for trace %s, has %v", traceID, keys(ownerSpans))
	}

	// The peer hop fed the per-stage SLO histogram under its own stage.
	reg := obs.NewRegistry()
	reg.MustRegister(stages.Histogram())
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`stage="peer_lookup"`,
		`stage="retrieve",outcome="peer_hop"`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("delivery histogram missing %s:\n%s", want, buf.String())
		}
	}
}

func keys(m map[string]span.Record) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestPeerLatencyLabelCardinalityBounded: the per-peer lookup summary
// tracks at most fabricPeerCap distinct peers; further peers share the
// "_other" overflow bucket, so ring churn cannot grow the label set without
// bound.
func TestPeerLatencyLabelCardinalityBounded(t *testing.T) {
	env := newFabricEnv(t)
	f := env.edge.fabric
	const peers = fabricPeerCap + 9
	for i := 0; i < peers; i++ {
		f.observePeer(fmt.Sprintf("peer-%02d", i), time.Millisecond)
	}
	// A repeat observation of an already-tracked peer must still land on
	// its own series, not the overflow bucket.
	f.observePeer("peer-00", 2*time.Millisecond)

	f.mu.Lock()
	tracked := len(f.peerLat)
	_, hasOverflow := f.peerLat[peerOverflowLabel]
	f.mu.Unlock()
	if tracked > fabricPeerCap+1 {
		t.Errorf("tracked series = %d, want <= %d (cap + overflow)", tracked, fabricPeerCap+1)
	}
	if !hasOverflow {
		t.Error("overflow bucket missing after exceeding the peer cap")
	}

	var points int
	var overflowCount uint64
	env.edge.FabricCollector().Collect(func(fam obs.Family) {
		if fam.Name != "bad_peer_lookup_seconds" {
			return
		}
		points = len(fam.Points)
		for _, p := range fam.Points {
			for _, l := range p.Labels {
				if l.Name == "peer" && l.Value == peerOverflowLabel {
					overflowCount = p.Summary.Count
				}
			}
		}
	})
	if points > fabricPeerCap+1 {
		t.Errorf("exposition emits %d peer series, want <= %d", points, fabricPeerCap+1)
	}
	if want := uint64(peers - fabricPeerCap); overflowCount != want {
		t.Errorf("overflow bucket count = %d, want %d", overflowCount, want)
	}
}
