package broker

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gobad/internal/bdms"
	"gobad/internal/core"
	"gobad/internal/httpx"
	"gobad/internal/obs"
)

// tracedPair stands up a data cluster and a broker over real HTTP, each
// with a debug-level JSON logger capturing into a buffer, so tests can
// follow one trace across both processes.
func tracedPair(t *testing.T, policy core.Policy, budget int64) (brokerSrv *httptest.Server, brokerLog, clusterLog *bytes.Buffer, b *Broker) {
	t.Helper()
	var brokerRef *Broker
	cluster := bdms.NewCluster(bdms.WithNotifier(bdms.NotifierFunc(func(subID, _ string, latest time.Duration) {
		if brokerRef != nil {
			_ = brokerRef.HandleNotification(subID, latest)
		}
	})))
	if err := cluster.CreateDataset("EmergencyReports", bdms.Schema{}); err != nil {
		t.Fatal(err)
	}
	if err := cluster.DefineChannel(bdms.ChannelDef{
		Name:   "Alerts",
		Params: []string{"etype"},
		Body:   "select * from EmergencyReports r where r.etype = $etype",
	}); err != nil {
		t.Fatal(err)
	}

	clusterLog = &bytes.Buffer{}
	clusterObs := httpx.NewObserver("badcluster", obs.NewLogger(clusterLog, slog.LevelDebug, "badcluster"))
	clusterSrv := httptest.NewServer(bdms.NewServer(cluster, bdms.WithObserver(clusterObs)).Handler())
	t.Cleanup(clusterSrv.Close)

	brokerLog = &bytes.Buffer{}
	brokerObs := httpx.NewObserver("badbroker", obs.NewLogger(brokerLog, slog.LevelDebug, "badbroker"))
	b, err := New(Config{
		ID:      "broker-1",
		Backend: bdms.NewClient(clusterSrv.URL, nil),
	},
		WithPolicy(policy),
		WithCacheBudget(budget),
		WithLogger(brokerObs.Logger),
	)
	if err != nil {
		t.Fatal(err)
	}
	brokerRef = b
	brokerSrv = httptest.NewServer(NewServer(b, WithObserver(brokerObs)).Handler())
	t.Cleanup(brokerSrv.Close)
	return brokerSrv, brokerLog, clusterLog, b
}

// logLinesWithTrace scans JSON log lines and returns those carrying the
// given trace id.
func logLinesWithTrace(t *testing.T, buf *bytes.Buffer, traceID string) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("non-JSON log line: %v: %s", err, sc.Text())
		}
		if line["trace_id"] == traceID {
			out = append(out, line)
		}
	}
	return out
}

// TestTracePropagatesBrokerToCluster is the end-to-end trace check: one
// client request with a traceparent header produces access-log lines on
// BOTH the broker and the data cluster sharing the client's trace ID.
func TestTracePropagatesBrokerToCluster(t *testing.T) {
	// NC caches nothing, so the retrieval below must fetch from the
	// cluster, carrying the trace across the wire.
	brokerSrv, brokerLog, clusterLog, b := tracedPair(t, core.NC{}, 0)

	fs, err := b.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	// Produce one result (the cluster's notifier advances the broker's
	// marker synchronously).
	cluster := b.backend.(*bdms.Client)
	if _, err := cluster.Ingest("EmergencyReports", map[string]any{"etype": "fire", "severity": 3.0}); err != nil {
		t.Fatal(err)
	}

	parent := obs.NewSpan()
	req, err := http.NewRequest(http.MethodGet,
		brokerSrv.URL+"/v1/subscriptions/"+fs+"/results?subscriber=alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceparentHeader, parent.Traceparent())
	resp, err := brokerSrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET results: %d: %s", resp.StatusCode, body)
	}
	var results ResultsResponse
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatal(err)
	}
	if len(results.Results) == 0 || results.Results[0].FromCache {
		t.Fatalf("expected a cluster-fetched result, got %+v", results)
	}

	traceID := parent.TraceIDString()
	brokerLines := logLinesWithTrace(t, brokerLog, traceID)
	clusterLines := logLinesWithTrace(t, clusterLog, traceID)
	if len(brokerLines) == 0 {
		t.Fatalf("no broker log line carries trace %s:\n%s", traceID, brokerLog.String())
	}
	if len(clusterLines) == 0 {
		t.Fatalf("no cluster log line carries trace %s — trace was not propagated:\n%s", traceID, clusterLog.String())
	}
	// The cluster handled the fetch the broker issued inside the client's
	// request, in distinct child spans of the same trace.
	if brokerLines[0]["span_id"] == clusterLines[0]["span_id"] {
		t.Error("broker and cluster must log distinct spans of the shared trace")
	}
}

// TestSlowFetchWarningCarriesTrace checks the slow-fetch log line fires
// under the configured threshold and stays inside the request's trace.
func TestSlowFetchWarningCarriesTrace(t *testing.T) {
	brokerSrv, brokerLog, _, b := tracedPair(t, core.NC{}, 0)
	b.slowFetch = 0 // every fetch counts as slow

	fs, err := b.Subscribe("alice", "Alerts", []any{"flood"})
	if err != nil {
		t.Fatal(err)
	}
	cluster := b.backend.(*bdms.Client)
	if _, err := cluster.Ingest("EmergencyReports", map[string]any{"etype": "flood", "severity": 1.0}); err != nil {
		t.Fatal(err)
	}

	parent := obs.NewSpan()
	req, _ := http.NewRequest(http.MethodGet,
		brokerSrv.URL+"/v1/subscriptions/"+fs+"/results?subscriber=alice", nil)
	req.Header.Set(obs.TraceparentHeader, parent.Traceparent())
	resp, err := brokerSrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	found := false
	for _, line := range logLinesWithTrace(t, brokerLog, parent.TraceIDString()) {
		if line["msg"] == "slow backend fetch" {
			found = true
			if line["level"] != "WARN" {
				t.Errorf("slow fetch level = %v, want WARN", line["level"])
			}
		}
	}
	if !found {
		t.Errorf("no slow-fetch warning with the request's trace:\n%s", brokerLog.String())
	}
}

// TestBrokerMetricsEndpoint checks the broker's /metrics serves a valid
// exposition carrying the cache accounting and singleflight families.
func TestBrokerMetricsEndpoint(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	srv := httptest.NewServer(NewServer(env.broker).Handler())
	t.Cleanup(srv.Close)
	if _, err := env.broker.Subscribe("alice", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	env.publish(t, "fire", 3)
	if _, _, err := env.broker.GetResults("alice", env.broker.FrontendSubscriptions("alice")[0]); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	parsed, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("broker /metrics does not parse: %v\n%s", err, body)
	}
	for _, name := range []string{
		"bad_cache_hit_ratio", "bad_cache_requests_total",
		"bad_cache_hit_bytes_total", "bad_cache_fetch_bytes_total",
		"bad_cache_budget_bytes", "bad_singleflight_leader_total",
		"bad_singleflight_coalesced_total", "bad_frontend_subscriptions",
		"go_goroutines",
	} {
		if _, ok := parsed.Value(name); !ok {
			t.Errorf("broker /metrics missing %s", name)
		}
	}
	// Per-shard occupancy appears with shard labels.
	if !strings.Contains(string(body), `bad_shard_bytes{shard="0"}`) {
		t.Error("broker /metrics missing per-shard families")
	}
	if v, _ := parsed.Value("bad_cache_requests_total"); v == 0 {
		t.Error("requests counter should be live after a retrieval")
	}
}
