package broker

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"

	"gobad/internal/bcs"
	"gobad/internal/bdms"
	"gobad/internal/core"
	"gobad/internal/metrics"
	"gobad/internal/obs"
	"gobad/internal/obs/span"
)

// The cooperative edge fabric (paper §VI's broker *network*): brokers
// share one HRW ring published by the BCS, a subscriber's session lives on
// its HRW owner, and each (channel, params) cache has an HRW owner too —
// so a local miss consults the owning sibling before paying a cluster
// fetch. The lookup rides inside the core manager's singleflight, so a
// fabric-wide stampede on one range still collapses to one fetch per
// broker, and the peer handler serves strictly from its local cache
// (Manager.Peek), which makes lookup chains structurally impossible.

// FabricConfig connects a broker to the cooperative fabric.
type FabricConfig struct {
	// BCS refreshes the membership ring (FabricTick). Optional: tests
	// and embedded setups can install views directly with SetRing.
	BCS *bdms.BCSClient
	// Peers performs broker-to-broker lookups; nil disables the peer
	// tier (the fabric then only does placement/rebalance).
	Peers *bdms.PeerClient
	// MemoTTL bounds how long a peer answer is reused for an identical
	// range before the sibling is asked again — the "populate the local
	// cache with a short TTL" rule, kept outside the result cache so the
	// paper's no-re-cache invariant for missed objects stays intact.
	// <= 0 selects 2s.
	MemoTTL time.Duration
}

// fabricMemoCap bounds the peer-answer memo; at the cap, expired entries
// are collected and, failing that, an arbitrary entry is evicted.
const fabricMemoCap = 1024

type memoEntry struct {
	objs    []*core.Object
	expires time.Duration
}

// fabric is the broker's runtime fabric state: the current ring view, the
// short-TTL peer-answer memo and the per-peer latency samples.
type fabric struct {
	b   *Broker
	cfg FabricConfig

	mu   sync.Mutex
	ring bcs.RingView
	memo map[string]memoEntry
	// peerLat samples per-peer lookup latency in seconds, keyed by the
	// owning broker's ID.
	peerLat map[string]*metrics.Sampler
}

func newFabric(b *Broker, cfg FabricConfig) *fabric {
	if cfg.MemoTTL <= 0 {
		cfg.MemoTTL = 2 * time.Second
	}
	return &fabric{
		b:       b,
		cfg:     cfg,
		memo:    make(map[string]memoEntry),
		peerLat: make(map[string]*metrics.Sampler),
	}
}

// FabricEnabled reports whether the broker participates in the fabric.
func (b *Broker) FabricEnabled() bool { return b.fabric != nil }

// SetRing installs a membership view (monotonic by epoch: stale views are
// ignored) and reports whether the view changed. Production brokers get
// views via FabricTick; tests and embedded fabrics install them directly.
func (b *Broker) SetRing(view bcs.RingView) bool {
	f := b.fabric
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if view.Epoch <= f.ring.Epoch && f.ring.Epoch != 0 {
		return false
	}
	changed := view.Epoch != f.ring.Epoch
	f.ring = view
	return changed
}

// Ring returns the broker's current membership view (zero when none was
// installed yet).
func (b *Broker) Ring() bcs.RingView {
	f := b.fabric
	if f == nil {
		return bcs.RingView{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring
}

// FabricTick refreshes the ring from the BCS (conditionally — an
// unchanged ring costs a 304) and, when membership changed, migrates the
// sessions HRW placement moved to another broker. Call it from a ticker.
func (b *Broker) FabricTick(ctx context.Context) (changed bool, migrated int, err error) {
	f := b.fabric
	if f == nil || f.cfg.BCS == nil {
		return false, 0, nil
	}
	// The tick is its own trace (joined to the caller's when it has one):
	// the conditional ring fetch below carries its traceparent to the BCS,
	// so a membership change is attributable across both processes.
	ctx, sp := b.traces.Start(ctx, "fabric.tick")
	defer func() { sp.SetError(err); sp.End() }()
	f.mu.Lock()
	prev := f.ring.Epoch
	f.mu.Unlock()
	view, fetched, err := f.cfg.BCS.RingIfChanged(ctx, prev)
	if err != nil || !fetched {
		return false, 0, err
	}
	if !b.SetRing(view) {
		return false, 0, nil
	}
	return true, b.Rebalance(ctx), nil
}

// Rebalance migrates every connected session whose HRW owner under the
// current ring is another live broker: pending push markers are flushed
// (bounded by ctx) and the socket is closed with a migrate frame naming
// the new owner, which the client supervisor follows without consulting
// the BCS. Sessions the ring still places here are untouched, so a
// rebalance disturbs at most ~K/n sessions per membership change.
func (b *Broker) Rebalance(ctx context.Context) int {
	f := b.fabric
	if f == nil || b.draining.Load() {
		return 0
	}
	ring := b.Ring()
	if len(ring.Brokers) == 0 || !ring.Has(b.id) {
		// An empty ring means no live sibling to point at; a ring that
		// no longer contains this broker means it is being removed, and
		// the drain path owns that migration.
		return 0
	}
	n := b.sessions.rebalance(ctx, func(subscriber string) (string, bool) {
		owner, ok := ring.Owner(subscriber)
		if !ok || owner.ID == b.id {
			return "", false
		}
		return owner.Address, true
	})
	if n > 0 {
		b.failover.RebalanceMigrated.Add(uint64(n))
	}
	return n
}

// FabricKey returns the fabric-wide identity of a (channel, params)
// subscription: a short hash every broker derives identically, regardless
// of its broker-local backend-subscription ID — peers address each other's
// caches with it.
func FabricKey(channel string, params []any) string {
	return fabricHash(subKey(channel, params))
}

func fabricHash(s string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return "fk" + strconv.FormatUint(h, 16)
}

// lookup is the peer tier of the miss path: on a local cache miss for
// cacheID over (from, to], ask the HRW owner of the subscription's fabric
// key for its cached copy. It returns ok=false whenever the fabric cannot
// fully serve the range — not configured, we are the owner, the owner is
// cold/draining/dead, or the answer was partial — in which case the caller
// falls through to the cluster. It runs inside the manager's singleflight,
// so concurrent identical misses cost one lookup.
func (f *fabric) lookup(ctx context.Context, cacheID string, from, to time.Duration, inclusiveTo bool) ([]*core.Object, bool) {
	if f.cfg.Peers == nil {
		return nil, false
	}
	f.b.mu.Lock()
	bs := f.b.backendByID[cacheID]
	var fkey string
	if bs != nil {
		fkey = bs.fkey
	}
	f.b.mu.Unlock()
	if bs == nil {
		return nil, false
	}
	f.mu.Lock()
	ring := f.ring
	f.mu.Unlock()
	owner, ok := ring.Owner(fkey)
	if !ok || owner.ID == f.b.id {
		return nil, false
	}

	memoKey := fkey + "|" + from.String() + "|" + to.String() + "|" + strconv.FormatBool(inclusiveTo)
	now := f.b.clock()
	f.mu.Lock()
	if e, hit := f.memo[memoKey]; hit && now < e.expires {
		f.mu.Unlock()
		f.b.stats.PeerHits.Add(1)
		return append([]*core.Object(nil), e.objs...), true
	}
	f.mu.Unlock()

	// The peer hop is one span in the delivery trace; DoJSONHeader forwards
	// its traceparent, so the owning sibling's server span joins the same
	// trace.
	lctx, sp := f.b.traces.Start(ctx, "fabric.peer_lookup")
	sp.SetAttr("peer", owner.ID)
	sp.SetAttr("fabric_key", fkey)
	start := time.Now()
	resp, err := f.cfg.Peers.Results(lctx, owner.Address, fkey,
		from.Nanoseconds(), to.Nanoseconds(), inclusiveTo)
	d := time.Since(start)
	f.observePeer(owner.ID, d)
	sp.SetError(err)
	sp.End()
	f.b.stages.Observe(lctx, span.StagePeerLookup, span.OutcomeNone, d)
	if err != nil || !resp.Complete {
		f.b.stats.PeerMisses.Add(1)
		return nil, false
	}
	objs := make([]*core.Object, 0, len(resp.Results))
	for _, r := range resp.Results {
		objs = append(objs, &core.Object{
			ID:           r.ID,
			Timestamp:    r.Timestamp,
			Size:         r.Size,
			FetchLatency: f.b.fetchLatency(r.Size),
			Payload:      r.Rows,
			Peer:         true,
		})
	}
	f.b.stats.PeerHits.Add(1)
	f.memoize(memoKey, objs, now)
	return objs, true
}

// memoize stores a peer answer for MemoTTL, bounding the table size.
func (f *fabric) memoize(key string, objs []*core.Object, now time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.memo) >= fabricMemoCap {
		for k, e := range f.memo {
			if now >= e.expires {
				delete(f.memo, k)
			}
		}
		for k := range f.memo {
			if len(f.memo) < fabricMemoCap {
				break
			}
			delete(f.memo, k)
		}
	}
	f.memo[key] = memoEntry{objs: objs, expires: now + f.cfg.MemoTTL}
}

// fabricPeerCap bounds how many distinct peer IDs get their own latency
// series; lookups against further peers share the overflow bucket, so the
// bad_peer_lookup_seconds label set cannot grow with fabric churn.
const fabricPeerCap = 16

// peerOverflowLabel is the shared label value for peers beyond the cap.
const peerOverflowLabel = "_other"

func (f *fabric) observePeer(peerID string, d time.Duration) {
	f.mu.Lock()
	s := f.peerLat[peerID]
	if s == nil {
		if len(f.peerLat) >= fabricPeerCap {
			peerID = peerOverflowLabel
			s = f.peerLat[peerID]
		}
		if s == nil {
			s = &metrics.Sampler{}
			f.peerLat[peerID] = s
		}
	}
	f.mu.Unlock()
	s.Observe(d.Seconds())
}

// FabricCollector exports the per-peer lookup latency summaries, labeled
// by peer broker ID (at most fabricPeerCap distinct IDs plus the "_other"
// overflow bucket). Registered by the broker server when the fabric is
// enabled.
func (b *Broker) FabricCollector() obs.Collector {
	return obs.CollectorFunc(func(emit func(obs.Family)) {
		f := b.fabric
		if f == nil {
			return
		}
		f.mu.Lock()
		ids := make([]string, 0, len(f.peerLat))
		for id := range f.peerLat {
			ids = append(ids, id)
		}
		samplers := make(map[string]*metrics.Sampler, len(ids))
		for _, id := range ids {
			samplers[id] = f.peerLat[id]
		}
		f.mu.Unlock()
		if len(ids) == 0 {
			return
		}
		sort.Strings(ids)
		pts := make([]obs.Point, 0, len(ids))
		for _, id := range ids {
			s := samplers[id]
			n := s.N()
			pts = append(pts, obs.Point{
				Labels: []obs.Label{{Name: "peer", Value: id}},
				Summary: &obs.SummarySnapshot{
					Quantiles: map[float64]float64{
						0.5:  s.Quantile(0.5),
						0.95: s.Quantile(0.95),
						0.99: s.Quantile(0.99),
					},
					Count: uint64(n),
					Sum:   s.Mean() * float64(n),
				},
			})
		}
		emit(obs.Family{
			Name:   "bad_peer_lookup_seconds",
			Help:   "Broker-to-broker peer lookup latency, labeled by owning peer.",
			Type:   obs.SummaryType,
			Points: pts,
		})
	})
}

// PeerResults serves a sibling's lookup for fabric key fk strictly from
// the local result cache (Manager.Peek — no consumption, no fetch, no
// policy side effects). ok=false means this broker cannot fully vouch for
// the range: it has no live subscription under fk, its cache has holes
// there, or its backend marker has not reached to yet.
func (b *Broker) PeerResults(fk string, from, to time.Duration, inclusiveTo bool) (bdms.PeerResultsResponse, bool) {
	b.mu.Lock()
	bs := b.byFabric[fk]
	var id string
	var bts time.Duration
	if bs != nil {
		id, bts = bs.id, bs.bts
	}
	b.mu.Unlock()
	if bs == nil {
		return bdms.PeerResultsResponse{}, false
	}
	// The cache being hole-free above from is not enough: the owner must
	// also have pulled results through to, or the newest objects of the
	// range may simply not have arrived here yet.
	if bts < to {
		return bdms.PeerResultsResponse{LatestNS: int64(bts)}, false
	}
	objs, complete := b.manager.Peek(id, from, to, inclusiveTo)
	if !complete {
		return bdms.PeerResultsResponse{LatestNS: int64(bts)}, false
	}
	results := make([]bdms.ResultObject, 0, len(objs))
	for _, o := range objs {
		rows, _ := o.Payload.([]map[string]any)
		results = append(results, bdms.ResultObject{
			ID: o.ID, SubscriptionID: id, Timestamp: o.Timestamp,
			Rows: rows, Size: o.Size,
		})
	}
	return bdms.PeerResultsResponse{Results: results, LatestNS: int64(bts), Complete: true}, true
}
