package broker

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gobad/internal/bdms"
	"gobad/internal/core"
	"gobad/internal/httpx"
	"gobad/internal/wsock"
)

// newHTTPEnv serves a broker (with in-process cluster backend) over HTTP.
func newHTTPEnv(t *testing.T) (*testEnv, *httptest.Server) {
	t.Helper()
	env := newTestEnv(t, core.LSC{}, 1<<20)
	srv := httptest.NewServer(NewServer(env.broker).Handler())
	t.Cleanup(srv.Close)
	return env, srv
}

func TestServerHealth(t *testing.T) {
	_, srv := newHTTPEnv(t)
	var out map[string]string
	if err := httpx.DoJSON(srv.Client(), http.MethodGet, srv.URL+"/healthz", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out["broker"] != "broker-1" {
		t.Errorf("health = %v", out)
	}
}

func TestServerSubscribeFlow(t *testing.T) {
	env, srv := newHTTPEnv(t)
	var subResp SubscribeResponse
	err := httpx.DoJSON(srv.Client(), http.MethodPost, srv.URL+"/api/subscriptions",
		SubscribeRequest{Subscriber: "alice", Channel: "Alerts", Params: []any{"fire"}}, &subResp)
	if err != nil {
		t.Fatal(err)
	}
	if subResp.FrontendSub == "" {
		t.Fatal("empty fs")
	}
	env.publish(t, "fire", 3)

	var results ResultsResponse
	u := srv.URL + "/api/subscriptions/" + subResp.FrontendSub + "/results?subscriber=alice"
	if err := httpx.DoJSON(srv.Client(), http.MethodGet, u, nil, &results); err != nil {
		t.Fatal(err)
	}
	if len(results.Results) != 1 || !results.Results[0].FromCache {
		t.Fatalf("results = %+v", results)
	}
	// Ack over HTTP.
	err = httpx.DoJSON(srv.Client(), http.MethodPost,
		srv.URL+"/api/subscriptions/"+subResp.FrontendSub+"/ack",
		AckRequest{Subscriber: "alice", TimestampNS: results.LatestNS}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// List.
	var subs map[string][]string
	err = httpx.DoJSON(srv.Client(), http.MethodGet,
		srv.URL+"/api/subscribers/alice/subscriptions", nil, &subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs["subscriptions"]) != 1 {
		t.Errorf("subs = %v", subs)
	}
	// Unsubscribe.
	err = httpx.DoJSON(srv.Client(), http.MethodDelete,
		srv.URL+"/api/subscriptions/"+subResp.FrontendSub+"?subscriber=alice", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestServerStatsAndCaches(t *testing.T) {
	env, srv := newHTTPEnv(t)
	if _, err := env.broker.Subscribe("alice", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	env.publish(t, "fire", 3)

	var stats StatsResponse
	if err := httpx.DoJSON(srv.Client(), http.MethodGet, srv.URL+"/api/stats", nil, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Policy != "LSC" || stats.FrontendSubs != 1 || stats.BackendSubs != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.CachedBytes <= 0 {
		t.Error("cached bytes should be positive after a publication")
	}

	var caches map[string][]core.CacheInfo
	if err := httpx.DoJSON(srv.Client(), http.MethodGet, srv.URL+"/api/caches", nil, &caches); err != nil {
		t.Fatal(err)
	}
	if len(caches["caches"]) != 1 || caches["caches"][0].Objects != 1 {
		t.Errorf("caches = %+v", caches)
	}
}

func TestServerErrorStatuses(t *testing.T) {
	_, srv := newHTTPEnv(t)
	checks := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/api/subscriptions", `{"subscriber":"","channel":""}`, http.StatusBadRequest},
		{"POST", "/api/subscriptions", `not json`, http.StatusBadRequest},
		{"GET", "/api/subscriptions/nope/results?subscriber=x", "", http.StatusNotFound},
		{"POST", "/api/subscriptions/nope/ack", `{"subscriber":"x","timestamp_ns":1}`, http.StatusNotFound},
		{"DELETE", "/api/subscriptions/nope?subscriber=x", "", http.StatusNotFound},
		{"POST", "/callbacks/results", `{"subscription_id":"ghost","latest_ns":99}`, http.StatusNotFound},
		{"GET", "/ws", "", http.StatusBadRequest}, // missing subscriber
	}
	for _, c := range checks {
		req, err := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		if c.body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func TestServerWebSocketPush(t *testing.T) {
	env, srv := newHTTPEnv(t)
	fs, err := env.broker.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := wsock.Dial(srv.URL+"/ws?subscriber=alice", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	env.publish(t, "fire", 4)
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	_, payload, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	var n PushNotification
	if err := json.Unmarshal(payload, &n); err != nil {
		t.Fatal(err)
	}
	// The shared wire form names the backend subscription, not the
	// per-subscriber frontend one — that's what lets the broker encode it
	// once per event.
	bs, err := env.broker.BackendSubID("alice", fs)
	if err != nil {
		t.Fatal(err)
	}
	if n.BackendSub != bs || n.FrontendSub != "" || n.Type != "results" {
		t.Errorf("push = %+v, want bs %q", n, bs)
	}
}

func TestServerWebSocketReplacesSession(t *testing.T) {
	env, srv := newHTTPEnv(t)
	if _, err := env.broker.Subscribe("alice", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	c1, err := wsock.Dial(srv.URL+"/ws?subscriber=alice", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := wsock.Dial(srv.URL+"/ws?subscriber=alice", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// The first connection gets closed by the hub.
	if err := c1.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c1.ReadMessage(); err == nil {
		t.Error("first session should be torn down when replaced")
	}
	// The second receives pushes.
	env.publish(t, "fire", 1)
	if err := c2.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.ReadMessage(); err != nil {
		t.Errorf("replacement session should receive pushes: %v", err)
	}
}

func TestServerPushCallback(t *testing.T) {
	// A PUSH-model webhook payload caches the carried result directly.
	env, srv := newHTTPEnv(t)
	if _, err := env.broker.Subscribe("alice", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	bsID := cacheIDOf(t, env.broker)
	payload := bdms.NotificationPayload{
		SubscriptionID: bsID,
		LatestNS:       int64(42 * time.Second),
		Result: &bdms.ResultObject{
			ID: "pushed-1", SubscriptionID: bsID,
			Timestamp: 42 * time.Second, Size: 64,
			Rows: []map[string]any{{"etype": "fire"}},
		},
	}
	err := httpx.DoJSON(srv.Client(), http.MethodPost, srv.URL+"/callbacks/results", payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := env.broker.Manager().Cache(bsID).Len(); got != 1 {
		t.Errorf("cache has %d objects after pushed callback, want 1", got)
	}
}
