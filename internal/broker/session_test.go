package broker

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"gobad/internal/metrics"
	"gobad/internal/wsock"
)

// hubConn attaches a fresh in-memory session to the hub, indexed under the
// given interests (backend sub -> frontend sub), and returns the client
// half of the pipe (raw; callers decide whether to drain, parse or stall
// it).
func hubConn(t *testing.T, h *sessionHub, subscriber string, interests map[string]string) net.Conn {
	t.Helper()
	sNC, cNC := net.Pipe()
	h.attach(subscriber, wsock.NewConn(sNC, false), interests)
	t.Cleanup(func() { _ = cNC.Close() })
	return cNC
}

// drainNotifications reads count push notifications off the raw client end.
func drainNotifications(t *testing.T, cNC net.Conn, count int) []PushNotification {
	t.Helper()
	conn := wsock.NewConn(cNC, true)
	_ = cNC.SetReadDeadline(time.Now().Add(5 * time.Second))
	out := make([]PushNotification, 0, count)
	for i := 0; i < count; i++ {
		_, payload, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		var n PushNotification
		if err := json.Unmarshal(payload, &n); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		out = append(out, n)
	}
	return out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newTestHub(queueCap int) (*sessionHub, *metrics.Counter) {
	delivered := &metrics.Counter{}
	return newSessionHub(queueCap, delivered, nil), delivered
}

// TestSessionHubStalledReaderDoesNotBlockBroadcast is the tentpole's core
// property: dispatching an event must not wait on any subscriber's socket.
// One subscriber never reads; broadcast must still return promptly and the
// healthy subscriber must still get the notification.
func TestSessionHubStalledReaderDoesNotBlockBroadcast(t *testing.T) {
	hub, _ := newTestHub(0)
	healthy := hubConn(t, hub, "healthy", map[string]string{"bs1": "fs-h"})
	_ = hubConn(t, hub, "stalled", map[string]string{"bs1": "fs-s"}) // no reader: first write blocks

	done := make(chan int, 1)
	go func() {
		done <- hub.broadcast(context.Background(), "bs1", 42)
	}()
	select {
	case accepted := <-done:
		if accepted != 2 {
			t.Errorf("accepted = %d, want 2", accepted)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("broadcast blocked on a stalled subscriber")
	}

	ns := drainNotifications(t, healthy, 1)
	if ns[0].BackendSub != "bs1" || ns[0].LatestNS != 42 {
		t.Errorf("notification = %+v", ns[0])
	}
}

// TestSessionHubCoalescesLatestWins floods one frontend subscription while
// its writer is blocked; queued markers must merge latest-wins so the
// subscriber sees the newest marker, not a backlog.
func TestSessionHubCoalescesLatestWins(t *testing.T) {
	hub, delivered := newTestHub(0)
	// Four backend subscriptions all mapping to the same frontend
	// subscription: coalescing is keyed by the frontend sub, so markers
	// across them must merge.
	cNC := hubConn(t, hub, "alice", map[string]string{
		"ev-first": "fs1", "ev-old": "fs1", "ev-new": "fs1", "ev-stale": "fs1",
	})

	ctx := context.Background()
	// First event: a pool writer pops it immediately and blocks writing to
	// the unread pipe.
	hub.broadcast(ctx, "ev-first", 1)
	waitFor(t, func() bool { return hub.queueDepth() == 0 }, "writer to pop the first marker")

	// Two more for the same frontend sub while the writer is stuck: the
	// second must replace the first in place.
	hub.broadcast(ctx, "ev-old", 2)
	hub.broadcast(ctx, "ev-new", 3)
	// A stale marker (out-of-order fan-out) is discarded, not merged, and
	// must not inflate the coalesce tally.
	hub.broadcast(ctx, "ev-stale", 2)
	if got := hub.snapshot(); got.Coalesced != 1 || got.Dropped != 0 {
		t.Errorf("stats = %+v, want 1 coalesced, 0 dropped", got)
	}

	ns := drainNotifications(t, cNC, 2)
	if ns[0].BackendSub != "ev-first" {
		t.Errorf("first delivery = %+v", ns[0])
	}
	if ns[1].BackendSub != "ev-new" || ns[1].LatestNS != 3 {
		t.Errorf("coalesced delivery = %+v, want ev-new latest 3", ns[1])
	}
	waitFor(t, func() bool { return delivered.Value() == 2 }, "delivered counter")
}

// TestSessionHubOverflowDropsOldest fills a tiny queue with distinct
// frontend subscriptions; the oldest pending marker must be evicted.
func TestSessionHubOverflowDropsOldest(t *testing.T) {
	hub, _ := newTestHub(2)
	cNC := hubConn(t, hub, "alice", map[string]string{
		"ev0": "fs0", "ev1": "fs1", "ev2": "fs2", "ev3": "fs3",
	})

	ctx := context.Background()
	hub.broadcast(ctx, "ev0", 1)
	waitFor(t, func() bool { return hub.queueDepth() == 0 }, "writer to pop the first marker")
	hub.broadcast(ctx, "ev1", 2)
	hub.broadcast(ctx, "ev2", 3)
	hub.broadcast(ctx, "ev3", 4) // evicts ev1
	if got := hub.snapshot(); got.Dropped != 1 || got.QueueDepth != 2 {
		t.Errorf("stats = %+v, want 1 dropped with depth 2", got)
	}

	ns := drainNotifications(t, cNC, 3)
	want := []string{"ev0", "ev2", "ev3"}
	for i, n := range ns {
		if n.BackendSub != want[i] {
			t.Errorf("delivery %d = %+v, want %s", i, n, want[i])
		}
	}
}

// TestSessionHubWriteFailureDropsSession severs the transport under a
// session; the next delivery must fail, count as a push failure and take
// the session offline.
func TestSessionHubWriteFailureDropsSession(t *testing.T) {
	hub, _ := newTestHub(0)
	cNC := hubConn(t, hub, "alice", map[string]string{"bs1": "fs1"})
	_ = cNC.Close()

	hub.broadcast(context.Background(), "bs1", 1)
	waitFor(t, func() bool { return !hub.online("alice") }, "session teardown")
	if got := hub.snapshot(); got.Failures == 0 {
		t.Errorf("stats = %+v, want a recorded failure", got)
	}
	// The dropped session must also leave the interest index, or future
	// broadcasts would enqueue onto a corpse.
	waitFor(t, func() bool { return hub.audienceSize("bs1") == 0 }, "interest index cleanup")
}

// TestSessionHubRegisterWhileOnline exercises the subscribe-while-connected
// path: an interest registered after attach must route subsequent
// broadcasts, and deregister must stop them.
func TestSessionHubRegisterWhileOnline(t *testing.T) {
	hub, _ := newTestHub(0)
	cNC := hubConn(t, hub, "alice", nil)

	ctx := context.Background()
	if got := hub.broadcast(ctx, "bs1", 1); got != 0 {
		t.Errorf("broadcast before register accepted %d, want 0", got)
	}
	hub.register("alice", "bs1", "fs1")
	if got := hub.broadcast(ctx, "bs1", 2); got != 1 {
		t.Errorf("broadcast after register accepted %d, want 1", got)
	}
	ns := drainNotifications(t, cNC, 1)
	if ns[0].BackendSub != "bs1" || ns[0].LatestNS != 2 {
		t.Errorf("notification = %+v", ns[0])
	}
	hub.deregister("alice", "bs1")
	if got := hub.broadcast(ctx, "bs1", 3); got != 0 {
		t.Errorf("broadcast after deregister accepted %d, want 0", got)
	}
}

// TestSessionEnqueueCloseRace hammers enqueue against close on the same
// session. broadcast holds session pointers under the hub's read lock, so
// an enqueue can race the close that an attach-replace or drop triggers;
// every lost marker's event reference must still be released and no
// marker may be accepted after close.
func TestSessionEnqueueCloseRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		hub, _ := newTestHub(0)
		cNC := hubConn(t, hub, "alice", nil)
		go func() { _, _ = io.Copy(io.Discard, cNC) }()
		hub.mu.Lock()
		s := hub.sessions["alice"]
		hub.mu.Unlock()

		ev := &pushEvent{latest: 1}
		if err := ev.pm.Encode(wsock.OpText, []byte(`{"type":"results"}`)); err != nil {
			t.Fatal(err)
		}
		// Keep the event alive across every release in the race: the test
		// reuses one event for all enqueues, so it must never hit zero and
		// be recycled mid-race.
		ev.refs.Store(1 << 30)
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 200; j++ {
				s.enqueue("fs1", ev)
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			s.close()
		}()
		close(start)
		wg.Wait()
		if s.enqueue("fs1", ev) {
			t.Fatal("enqueue accepted a marker after close")
		}
		hub.stop()
	}
}

// TestSessionHubChurn hammers attach/detach/replace concurrently with
// broadcasts — the -race tier's target. Every attached pipe gets a raw
// drainer so writers never stall.
func TestSessionHubChurn(t *testing.T) {
	hub, _ := newTestHub(0)
	subscribers := []string{"a", "b", "c", "d"}

	var churners sync.WaitGroup
	for _, sub := range subscribers {
		churners.Add(1)
		go func(sub string) {
			defer churners.Done()
			interests := map[string]string{"bs-churn": "fs-" + sub}
			for i := 0; i < 25; i++ {
				sNC, cNC := net.Pipe()
				go func() { _, _ = io.Copy(io.Discard, cNC) }()
				conn := wsock.NewConn(sNC, false)
				hub.attach(sub, conn, interests) // replaces (and closes) the previous session
				if i%5 == 4 {
					hub.detach(sub, conn)
				}
			}
		}(sub)
	}

	stop := make(chan struct{})
	broadcasterDone := make(chan struct{})
	go func() {
		defer close(broadcasterDone)
		ctx := context.Background()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				hub.broadcast(ctx, "bs-churn", int64(i))
			}
		}
	}()

	churners.Wait()
	close(stop)
	<-broadcasterDone
}
