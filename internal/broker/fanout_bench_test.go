package broker

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"sort"
	"testing"
	"time"

	"gobad/internal/wsock"
)

const benchSubscribers = 1000

// benchHub builds a hub with the given number of drained in-memory
// sessions plus, optionally, one whose peer never reads — the pathological
// slow subscriber the async pipeline must not wait on.
func benchHub(b *testing.B, drained int, stalled bool) (*sessionHub, map[string]string) {
	b.Helper()
	hub, _ := newTestHub(0)
	targets := make(map[string]string, drained+1)
	for i := 0; i < drained; i++ {
		sub := "sub" + itoa(i)
		sNC, cNC := net.Pipe()
		go func() { _, _ = io.Copy(io.Discard, cNC) }()
		hub.attach(sub, wsock.NewConn(sNC, false), map[string]string{"bs-bench": "fs-" + sub})
		targets[sub] = "fs-" + sub
		b.Cleanup(func() { _ = cNC.Close() })
	}
	if stalled {
		sNC, cNC := net.Pipe()
		hub.attach("stalled", wsock.NewConn(sNC, false), map[string]string{"bs-bench": "fs-stalled"})
		targets["stalled"] = "fs-stalled"
		b.Cleanup(func() { _ = cNC.Close() })
	}
	return hub, targets
}

// itoa avoids fmt in the hot setup loop.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkFanout measures dispatching one backend-subscription event to
// 1000 drained subscribers plus one stalled one through the async
// pipeline: encode once, enqueue per session, never block on a socket.
// p99-dispatch-ns reports the 99th-percentile latency of a full dispatch
// call — with a stalled subscriber in the set, it must stay in the same
// range as the drained-only case, because enqueueing does no I/O.
func BenchmarkFanout(b *testing.B) {
	hub, _ := benchHub(b, benchSubscribers, true)
	ctx := context.Background()
	lat := make([]time.Duration, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		hub.broadcast(ctx, "bs-bench", int64(i+1))
		lat[i] = time.Since(start)
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-dispatch-ns")
}

// BenchmarkFanoutLegacySync replicates the pre-pipeline delivery loop —
// one json.Marshal and one blocking WriteMessage per subscriber, straight
// from the dispatch path — as the before-comparator for BenchmarkFanout.
// No stalled subscriber: the synchronous form would block on it forever,
// which is precisely the failure mode the async pipeline removes.
func BenchmarkFanoutLegacySync(b *testing.B) {
	hub, targets := benchHub(b, benchSubscribers, false)
	conns := make(map[string]*session, len(targets))
	hub.mu.Lock()
	for sub := range targets {
		conns[sub] = hub.sessions[sub]
	}
	hub.mu.Unlock()
	lat := make([]time.Duration, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for sub, fsID := range targets {
			n := PushNotification{Type: "results", FrontendSub: fsID, LatestNS: int64(i + 1)}
			payload, err := json.Marshal(n)
			if err != nil {
				b.Fatal(err)
			}
			if err := conns[sub].conn.WriteMessage(wsock.OpText, payload); err != nil {
				b.Fatal(err)
			}
		}
		lat[i] = time.Since(start)
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-dispatch-ns")
}
