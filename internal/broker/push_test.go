package broker

import (
	"testing"
	"time"

	"gobad/internal/bdms"
	"gobad/internal/core"
)

// newPushEnv wires an in-process PUSH-model cluster to a broker.
func newPushEnv(t *testing.T, policy core.Policy, budget int64) *testEnv {
	t.Helper()
	env := &testEnv{clk: &testClock{}}
	env.cluster = bdms.NewCluster(
		bdms.WithClock(env.clk.Now),
		bdms.WithPushModel(),
		bdms.WithNotifier(pushAdapter{env: env}),
	)
	if err := env.cluster.CreateDataset("EmergencyReports", bdms.Schema{}); err != nil {
		t.Fatal(err)
	}
	if err := env.cluster.DefineChannel(bdms.ChannelDef{
		Name:   "Alerts",
		Params: []string{"etype"},
		Body:   "select * from EmergencyReports r where r.etype = $etype",
	}); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{
		ID:          "push-broker",
		Backend:     env.cluster,
		Policy:      policy,
		CacheBudget: budget,
		Clock:       env.clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	env.broker = b
	return env
}

// pushAdapter delivers push notifications straight into the broker.
type pushAdapter struct{ env *testEnv }

func (a pushAdapter) Notify(subID, _ string, latest time.Duration) {
	if a.env.broker != nil {
		_ = a.env.broker.HandleNotification(subID, latest)
	}
}

func (a pushAdapter) NotifyPush(subID, _ string, obj bdms.ResultObject) {
	if a.env.broker != nil {
		_ = a.env.broker.HandlePushedResult(subID, obj)
	}
}

func TestPushModelCachesWithoutFetching(t *testing.T) {
	env := newPushEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	fs, err := b.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	env.publish(t, "fire", 3)
	env.publish(t, "fire", 4)

	items, latest, err := b.GetResults("alice", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("got %d results, want 2", len(items))
	}
	for _, it := range items {
		if !it.FromCache {
			t.Error("pushed results should be cached")
		}
	}
	if err := b.Ack("alice", fs, latest); err != nil {
		t.Fatal(err)
	}
	// The PUSH model's point: results entered the cache without any
	// fetch from the cluster.
	if got := b.Stats().FetchBytes.Value(); got != 0 {
		t.Errorf("fetch bytes = %v, want 0 under PUSH", got)
	}
	if b.Stats().VolumeBytes.Value() <= 0 {
		t.Error("pushed bytes should count toward volume")
	}
}

func TestPushModelDuplicateIgnored(t *testing.T) {
	env := newPushEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	if _, err := b.Subscribe("alice", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	env.publish(t, "fire", 3)
	// Replaying the same pushed object must be a no-op.
	objs, err := env.cluster.Results(cacheIDOf(t, b), 0, env.clk.Now(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Fatalf("results = %d", len(objs))
	}
	if err := b.HandlePushedResult(objs[0].SubscriptionID, objs[0]); err != nil {
		t.Fatal(err)
	}
	if got := b.Manager().Cache(objs[0].SubscriptionID).Len(); got != 1 {
		t.Errorf("cache has %d objects after duplicate push, want 1", got)
	}
}

func TestPushModelUnknownSubscription(t *testing.T) {
	env := newPushEnv(t, core.LSC{}, 1<<20)
	err := env.broker.HandlePushedResult("ghost", bdms.ResultObject{ID: "x", Timestamp: time.Second})
	if err == nil {
		t.Error("push for unknown subscription should fail")
	}
}

func TestPushModelBackfillsGaps(t *testing.T) {
	env := newPushEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	fs, err := b.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	env.publish(t, "fire", 1)
	bsID := cacheIDOf(t, b)
	// Simulate a dropped push: produce a result the broker never saw,
	// then push a newer one directly.
	env.clk.Advance(time.Second)
	if _, err := env.cluster.Ingest("EmergencyReports", map[string]any{"etype": "x"}); err != nil {
		t.Fatal(err)
	}
	// (etype "x" does not match, so craft the gap via direct results.)
	env.publishWithoutNotify(t, "fire", 2)
	env.publish(t, "fire", 3)
	items, _, err := b.GetResults("alice", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("got %d results, want 3 (gap back-filled)", len(items))
	}
	_ = bsID
}

// TestPushedBatchIngestsOnce: a coalesced webhook batch (Results array)
// lands in the cache with one call — every object cached, the backend
// marker advanced to the batch's newest timestamp, and a redelivered batch
// ignored as a duplicate.
func TestPushedBatchIngestsOnce(t *testing.T) {
	env := newPushEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	fs, err := b.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	bsID := cacheIDOf(t, b)
	batch := []bdms.ResultObject{
		// Deliberately out of order: the handler must sort before caching.
		{ID: "r2", SubscriptionID: bsID, Timestamp: 2 * time.Second, Size: 10},
		{ID: "r1", SubscriptionID: bsID, Timestamp: 1 * time.Second, Size: 10},
		{ID: "r3", SubscriptionID: bsID, Timestamp: 3 * time.Second, Size: 10},
	}
	if err := b.HandlePushedResults(bsID, batch); err != nil {
		t.Fatal(err)
	}
	// Redelivery of the same batch (at-least-once webhooks) is a no-op.
	if err := b.HandlePushedResults(bsID, batch); err != nil {
		t.Fatal(err)
	}
	if got := b.Manager().Cache(bsID).Len(); got != 3 {
		t.Errorf("cache has %d objects after duplicate batch, want 3", got)
	}
	items, latest, err := b.GetResults("alice", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 || items[0].ID != "r1" || items[2].ID != "r3" {
		t.Fatalf("items = %+v, want r1..r3 oldest first", items)
	}
	if latest != 3*time.Second {
		t.Errorf("latest = %v, want 3s", latest)
	}
	if err := b.Ack("alice", fs, latest); err != nil {
		t.Fatal(err)
	}
	// Pushed batches must not trigger fetches: the batch itself carried
	// everything.
	if got := b.Stats().FetchBytes.Value(); got != 0 {
		t.Errorf("fetch bytes = %v, want 0", got)
	}
}

// publishWithoutNotify produces a matching publication whose push delivery
// is "lost" (the notifier is bypassed by swapping it out temporarily).
func (env *testEnv) publishWithoutNotify(t *testing.T, etype string, sev float64) {
	t.Helper()
	saved := env.broker
	env.broker = nil // pushAdapter drops deliveries
	env.publish(t, etype, sev)
	env.broker = saved
}

// cacheIDOf extracts the single backend subscription id.
func cacheIDOf(t *testing.T, b *Broker) string {
	t.Helper()
	infos := b.Manager().CacheInfos()
	if len(infos) != 1 {
		t.Fatalf("expected 1 cache, got %d", len(infos))
	}
	return infos[0].ID
}
