package broker

import (
	"log/slog"
	"time"

	"gobad/internal/core"
)

// Option mutates a Config before validation; New applies options in order
// after the struct literal, so options win over zero-valued fields and
// later options win over earlier ones.
type Option func(*Config)

// WithPolicy sets the caching policy.
func WithPolicy(p core.Policy) Option {
	return func(c *Config) { c.Policy = p }
}

// WithCacheBudget sets the cache budget B in bytes.
func WithCacheBudget(b int64) Option {
	return func(c *Config) { c.CacheBudget = b }
}

// WithTTLConfig replaces the TTL tuning block wholesale.
func WithTTLConfig(ttl core.TTLConfig) Option {
	return func(c *Config) { c.TTL = ttl }
}

// WithShards sets the number of lock stripes of the broker's cache
// manager; n <= 0 selects core.DefaultShards.
func WithShards(n int) Option {
	return func(c *Config) { c.CacheShards = n }
}

// WithClock overrides the broker-local clock (tests/simulation).
func WithClock(fn func() time.Duration) Option {
	return func(c *Config) { c.Clock = fn }
}

// WithLogger sets the broker's structured logger.
func WithLogger(l *slog.Logger) Option {
	return func(c *Config) { c.Logger = l }
}

// WithSlowFetchThreshold sets the duration above which a data cluster pull
// is logged as slow.
func WithSlowFetchThreshold(d time.Duration) Option {
	return func(c *Config) { c.SlowFetchThreshold = d }
}

// WithCallbackURL sets the webhook URL registered with the data cluster.
func WithCallbackURL(url string) Option {
	return func(c *Config) { c.CallbackURL = url }
}

// WithBackendLink sets the modelled data cluster link characteristics that
// parameterize the LSD policy's per-object fetch latency l_ij.
func WithBackendLink(rtt time.Duration, bandwidth float64) Option {
	return func(c *Config) {
		c.BackendRTT = rtt
		c.BackendBandwidth = bandwidth
	}
}

// WithPushQueue bounds each WebSocket session's outbound notification
// queue; n <= 0 selects DefaultPushQueue.
func WithPushQueue(n int) Option {
	return func(c *Config) { c.PushQueue = n }
}

// WithPushWriters sets the size of the shared WebSocket writer pool that
// drains session push queues; n <= 0 keeps the GOMAXPROCS-derived default.
func WithPushWriters(n int) Option {
	return func(c *Config) { c.PushWriters = n }
}

// WithPushWriteTimeout bounds one pooled writer's socket write; d <= 0
// keeps DefaultPushWriteTimeout.
func WithPushWriteTimeout(d time.Duration) Option {
	return func(c *Config) { c.PushWriteTimeout = d }
}

// WithStaleServe enables graceful degradation: retrievals whose backend
// fetch fails are answered from the cache alone and marked stale instead
// of erroring.
func WithStaleServe(on bool) Option {
	return func(c *Config) { c.StaleServe = on }
}

// WithFabric connects the broker to the cooperative edge fabric: HRW
// placement, session rebalance on ring changes and peer cache lookup on
// misses. A nil config leaves the broker standalone.
func WithFabric(fc *FabricConfig) Option {
	return func(c *Config) { c.Fabric = fc }
}
