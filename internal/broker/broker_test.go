package broker

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gobad/internal/bdms"
	"gobad/internal/core"
)

// testClock is a controllable shared clock.
type testClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *testClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// testEnv wires an in-process cluster directly to a broker: the cluster's
// notifier invokes the broker's notification handler synchronously.
type testEnv struct {
	clk     *testClock
	cluster *bdms.Cluster
	broker  *Broker
}

func newTestEnv(t *testing.T, policy core.Policy, budget int64) *testEnv {
	t.Helper()
	env := &testEnv{clk: &testClock{}}
	env.cluster = bdms.NewCluster(
		bdms.WithClock(env.clk.Now),
		bdms.WithNotifier(bdms.NotifierFunc(func(subID, _ string, latest time.Duration) {
			if env.broker != nil {
				_ = env.broker.HandleNotification(subID, latest)
			}
		})),
	)
	if err := env.cluster.CreateDataset("EmergencyReports", bdms.Schema{}); err != nil {
		t.Fatal(err)
	}
	if err := env.cluster.DefineChannel(bdms.ChannelDef{
		Name:   "Alerts",
		Params: []string{"etype"},
		Body:   "select * from EmergencyReports r where r.etype = $etype",
	}); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{
		ID:          "broker-1",
		Backend:     env.cluster,
		Policy:      policy,
		CacheBudget: budget,
		Clock:       env.clk.Now,
		TTL:         core.TTLConfig{DefaultTTL: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.broker = b
	return env
}

func (env *testEnv) publish(t *testing.T, etype string, sev float64) {
	t.Helper()
	env.clk.Advance(time.Second)
	_, err := env.cluster.Ingest("EmergencyReports", map[string]any{
		"etype": etype, "severity": sev,
		"location": map[string]any{"lat": 33.0, "lon": -117.0},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := New(Config{ID: "b"}); err == nil {
		t.Error("missing backend should fail")
	}
	if _, err := New(Config{ID: "b", Backend: bdms.NewCluster()}); err == nil {
		t.Error("missing policy should fail")
	}
}

func TestSubscriptionSuppression(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	fs1, err := b.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := b.Subscribe("bob", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	fs3, err := b.Subscribe("carol", "Alerts", []any{"flood"})
	if err != nil {
		t.Fatal(err)
	}
	if fs1 == fs2 || fs2 == fs3 {
		t.Error("frontend subscription ids must be distinct")
	}
	if got := b.NumFrontendSubs(); got != 3 {
		t.Errorf("frontend subs = %d, want 3", got)
	}
	if got := b.NumBackendSubs(); got != 2 {
		t.Errorf("backend subs = %d, want 2 (fire shared)", got)
	}
	if got := env.cluster.NumSubscriptions(); got != 2 {
		t.Errorf("cluster subs = %d, want 2", got)
	}
	if got := b.NumSubscribers(); got != 3 {
		t.Errorf("subscribers = %d, want 3", got)
	}
}

func TestResubscribeIsIdempotent(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	fs1, err := env.broker.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := env.broker.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	if fs1 != fs2 {
		t.Errorf("re-subscribe returned %s, want existing %s", fs2, fs1)
	}
	if env.broker.NumFrontendSubs() != 1 {
		t.Error("duplicate subscription must not be created")
	}
}

func TestNotificationPullCacheAndRetrieve(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	fs, err := b.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	env.publish(t, "fire", 3)
	env.publish(t, "flood", 2) // does not match
	env.publish(t, "fire", 5)

	items, latest, err := b.GetResults("alice", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("got %d results, want 2", len(items))
	}
	for _, it := range items {
		if !it.FromCache {
			t.Errorf("result %s should come from the cache", it.ID)
		}
		if len(it.Rows) != 1 || it.Rows[0]["etype"] != "fire" {
			t.Errorf("rows = %v", it.Rows)
		}
	}
	if latest == 0 {
		t.Error("latest marker should be set")
	}
	if got := b.Stats().HitRatio(); got != 1 {
		t.Errorf("hit ratio = %v, want 1", got)
	}
	if b.Stats().VolumeBytes.Value() <= 0 {
		t.Error("volume bytes should account the base pull")
	}
}

func TestAckAdvancesMarker(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	fs, err := b.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	env.publish(t, "fire", 3)
	items, latest, err := b.GetResults("alice", fs)
	if err != nil || len(items) != 1 {
		t.Fatalf("items=%v err=%v", items, err)
	}
	if err := b.Ack("alice", fs, latest); err != nil {
		t.Fatal(err)
	}
	// After ack, the same range yields nothing.
	items, _, err = b.GetResults("alice", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Errorf("post-ack retrieval returned %d items", len(items))
	}
	// Ack beyond bts clamps.
	if err := b.Ack("alice", fs, latest+time.Hour); err != nil {
		t.Fatal(err)
	}
	// Ack backwards is ignored.
	if err := b.Ack("alice", fs, 0); err != nil {
		t.Fatal(err)
	}
}

func TestLateJoinerOnlySeesNewResults(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	if _, err := b.Subscribe("alice", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	env.publish(t, "fire", 3)
	// Bob joins the same shared backend subscription afterwards.
	fsBob, err := b.Subscribe("bob", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	items, _, err := b.GetResults("bob", fsBob)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Errorf("late joiner got %d pre-join results, want 0", len(items))
	}
	env.publish(t, "fire", 4)
	items, _, err = b.GetResults("bob", fsBob)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Errorf("late joiner got %d post-join results, want 1", len(items))
	}
}

func TestCacheMissRefetchesFromCluster(t *testing.T) {
	// Tiny budget forces evictions; subscriber must still get everything.
	env := newTestEnv(t, core.LSC{}, 200)
	b := env.broker
	fs, err := b.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		env.publish(t, "fire", float64(i+1))
	}
	items, latest, err := b.GetResults("alice", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("got %d results, want all 5 despite evictions", len(items))
	}
	var fromCache, fetched int
	for _, it := range items {
		if it.FromCache {
			fromCache++
		} else {
			fetched++
		}
	}
	if fetched == 0 {
		t.Error("with budget 200 some results must be re-fetched")
	}
	if err := b.Ack("alice", fs, latest); err != nil {
		t.Fatal(err)
	}
	if b.Stats().MissBytes.Value() <= 0 {
		t.Error("miss bytes should be accounted")
	}
}

func TestUnsubscribeTearsDownBackendSub(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	fsA, err := b.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	fsB, err := b.Subscribe("bob", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe("alice", fsA); err != nil {
		t.Fatal(err)
	}
	if got := env.cluster.NumSubscriptions(); got != 1 {
		t.Errorf("backend sub must survive while bob is attached (subs=%d)", got)
	}
	if err := b.Unsubscribe("bob", fsB); err != nil {
		t.Fatal(err)
	}
	if got := env.cluster.NumSubscriptions(); got != 0 {
		t.Errorf("backend sub should be withdrawn, cluster has %d", got)
	}
	if b.NumBackendSubs() != 0 || b.NumFrontendSubs() != 0 {
		t.Error("broker tables should be empty")
	}
}

func TestUnsubscribeValidation(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	fs, err := env.broker.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.broker.Unsubscribe("mallory", fs); err == nil {
		t.Error("unsubscribing someone else's subscription should fail")
	}
	if err := env.broker.Unsubscribe("alice", "nope"); err == nil {
		t.Error("unknown fs should fail")
	}
}

func TestGetResultsValidation(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	if _, _, err := env.broker.GetResults("alice", "nope"); err == nil {
		t.Error("unknown fs should fail")
	}
	if err := env.broker.Ack("alice", "nope", 0); err == nil {
		t.Error("ack of unknown fs should fail")
	}
}

func TestNCPolicyFetchesEverythingFromCluster(t *testing.T) {
	env := newTestEnv(t, core.NC{}, 0)
	b := env.broker
	fs, err := b.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	env.publish(t, "fire", 3)
	env.publish(t, "fire", 4)
	items, _, err := b.GetResults("alice", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("got %d results, want 2", len(items))
	}
	for _, it := range items {
		if it.FromCache {
			t.Error("NC must serve everything from the cluster")
		}
	}
	if b.Stats().VolumeBytes.Value() != 0 {
		t.Error("NC broker must not pull on notification")
	}
	if b.Stats().HitRatio() != 0 {
		t.Error("NC hit ratio must be 0")
	}
}

func TestStaleNotificationIgnored(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	if _, err := b.Subscribe("alice", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	env.publish(t, "fire", 3)
	// Replay an old notification; must be a no-op.
	for _, bsInfo := range b.Manager().CacheInfos() {
		if err := b.HandleNotification(bsInfo.ID, time.Nanosecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.HandleNotification("unknown-sub", time.Hour); err == nil {
		t.Error("notification for unknown subscription should fail")
	}
}

func TestTTLPolicyExpiryThroughBroker(t *testing.T) {
	env := newTestEnv(t, core.TTL{}, 1<<20)
	b := env.broker
	fs, err := b.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	// Override is not possible post-construction; DefaultTTL is 1h from
	// newTestEnv, so advance beyond it.
	env.publish(t, "fire", 3)
	env.clk.Advance(2 * time.Hour)
	if n := b.ExpireDue(); n != 1 {
		t.Errorf("expired %d objects, want 1", n)
	}
	// Expired object must still be retrievable from the cluster.
	items, _, err := b.GetResults("alice", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].FromCache {
		t.Errorf("expired result should be re-fetched: %+v", items)
	}
	b.DriveTTL() // smoke: recompute + expire path
}

func TestConcurrentSubscribeSameKey(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Subscribe(fmt.Sprintf("sub-%d", i), "Alerts", []any{"fire"}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := b.NumBackendSubs(); got != 1 {
		t.Errorf("backend subs = %d, want 1 (suppressed)", got)
	}
	if got := env.cluster.NumSubscriptions(); got != 1 {
		t.Errorf("cluster subs = %d, want 1 (race duplicates withdrawn)", got)
	}
}

func TestFrontendSubscriptionsListing(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	if _, err := b.Subscribe("alice", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("alice", "Alerts", []any{"flood"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("bob", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	if got := b.FrontendSubscriptions("alice"); len(got) != 2 {
		t.Errorf("alice subs = %v", got)
	}
	if got := b.FrontendSubscriptions("ghost"); len(got) != 0 {
		t.Errorf("ghost subs = %v", got)
	}
}

func TestFetchLatencyModel(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)
	b := env.broker
	// 500ms RTT + size/10MBps transfer.
	if got := b.fetchLatency(0); got != 500*time.Millisecond {
		t.Errorf("latency(0) = %v", got)
	}
	if got := b.fetchLatency(10 << 20); got != 1500*time.Millisecond {
		t.Errorf("latency(10MB) = %v, want 1.5s", got)
	}
}

func TestGetResultsPartialFetchError(t *testing.T) {
	// Force evictions, then make the backend unreachable: the subscriber
	// still gets the cached suffix plus the error.
	env := newTestEnv(t, core.LSC{}, 200)
	b := env.broker
	fs, err := b.Subscribe("alice", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		env.publish(t, "fire", float64(i+1))
	}
	// Detach the backend by swapping in a failing one.
	b.backend = failingBackend{}
	items, _, err := b.GetResults("alice", fs)
	if err == nil {
		t.Fatal("backend failure should surface")
	}
	if len(items) == 0 {
		t.Error("cached results should still be returned alongside the error")
	}
}

// failingBackend errors on every call.
type failingBackend struct{}

func (failingBackend) Subscribe(string, []any, string) (string, error) {
	return "", fmt.Errorf("backend down")
}
func (failingBackend) Unsubscribe(string) error { return fmt.Errorf("backend down") }
func (failingBackend) Results(string, time.Duration, time.Duration, bool) ([]bdms.ResultObject, error) {
	return nil, fmt.Errorf("backend down")
}
func (failingBackend) LatestTimestamp(string) (time.Duration, error) {
	return 0, fmt.Errorf("backend down")
}

func TestSubscribeBackendFailure(t *testing.T) {
	b, err := New(Config{
		ID:      "b",
		Backend: failingBackend{},
		Policy:  core.LSC{}, CacheBudget: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("alice", "Alerts", []any{"fire"}); err == nil {
		t.Error("backend subscribe failure should surface")
	}
	if b.NumFrontendSubs() != 0 || b.NumBackendSubs() != 0 {
		t.Error("failed subscribe must not leave state behind")
	}
}
