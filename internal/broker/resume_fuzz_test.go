package broker

import (
	"strings"
	"testing"
	"time"
)

// FuzzParseResumeToken drives the resume-token codec with arbitrary
// input. Properties: no panic, accepted tokens are never negative, and
// any accepted value survives a Format/Parse round trip unchanged —
// a broker handing its marker to a client must get the same marker back
// on failover resubscribe.
func FuzzParseResumeToken(f *testing.F) {
	seeds := []string{
		"",
		"0",
		"123456789",
		"9223372036854775807",           // max int64
		"9223372036854775808",           // overflows int64
		"-1",                            // negative legacy value
		"+42",                           // signed decimal
		"1_000",                         // underscores (invalid in base 10)
		"rt1-0-620a68e2",                // v1 shape, wrong checksum for ns=0
		"rt1-3b9aca00-0",                // checksum too short
		"rt1-3b9aca00-00000000",         // checksum mismatch
		"rt1--00000000",                 // empty timestamp
		"rt1-zz-00000000",               // non-hex timestamp
		"rt1-ffffffffffffffff-00000000", // timestamp overflows int64
		"rt2-0-00000000",                // unknown version
		FormatResumeToken(0),
		FormatResumeToken(time.Second),
		FormatResumeToken(time.Duration(1 << 62)),
		strings.Repeat("9", 64),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ts, err := ParseResumeToken(s)
		if err != nil {
			return
		}
		if ts < 0 {
			t.Fatalf("ParseResumeToken(%q) accepted negative timestamp %d", s, ts)
		}
		tok := FormatResumeToken(ts)
		back, err := ParseResumeToken(tok)
		if err != nil {
			t.Fatalf("round trip: ParseResumeToken(FormatResumeToken(%d)) = error %v (token %q from input %q)", ts, err, tok, s)
		}
		if back != ts {
			t.Fatalf("round trip: %q -> %d -> %q -> %d", s, ts, tok, back)
		}
	})
}
