package broker

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gobad/internal/bcs"
	"gobad/internal/bdms"
	"gobad/internal/core"
)

// countingBackend wraps the in-process cluster and counts result pulls —
// both interface levels, so the broker's context upgrade cannot bypass the
// counter.
type countingBackend struct {
	*bdms.Cluster
	calls atomic.Int64
}

func (c *countingBackend) Results(subID string, from, to time.Duration, inclusiveTo bool) ([]bdms.ResultObject, error) {
	c.calls.Add(1)
	return c.Cluster.Results(subID, from, to, inclusiveTo)
}

func (c *countingBackend) ResultsContext(ctx context.Context, subID string, from, to time.Duration, inclusiveTo bool) ([]bdms.ResultObject, error) {
	c.calls.Add(1)
	return c.Cluster.ResultsContext(ctx, subID, from, to, inclusiveTo)
}

// fabricEnv is a two-broker fabric over one in-process cluster: "owner" is
// the HRW owner of every fabric key (it is the only ring member) and serves
// peer lookups over real HTTP; "edge" runs the NC policy so every retrieval
// is a miss that exercises the two-tier lookup path.
type fabricEnv struct {
	clk       *testClock
	cluster   *bdms.Cluster
	owner     *Broker
	edge      *Broker
	ownerSrv  *httptest.Server
	ownerHTTP *Server
	edgeCalls *countingBackend
	// peerReqs counts peer-protocol requests arriving at the owner.
	peerReqs atomic.Int64
}

func newFabricEnv(t *testing.T) *fabricEnv {
	t.Helper()
	env := &fabricEnv{clk: &testClock{}}
	var mu sync.Mutex
	var brokers []*Broker
	env.cluster = bdms.NewCluster(
		bdms.WithClock(env.clk.Now),
		bdms.WithNotifier(bdms.NotifierFunc(func(subID, _ string, latest time.Duration) {
			mu.Lock()
			bs := append([]*Broker(nil), brokers...)
			mu.Unlock()
			for _, b := range bs {
				_ = b.HandleNotification(subID, latest) // each broker owns its own sub IDs
			}
		})),
	)
	if err := env.cluster.CreateDataset("EmergencyReports", bdms.Schema{}); err != nil {
		t.Fatal(err)
	}
	if err := env.cluster.DefineChannel(bdms.ChannelDef{
		Name:   "Alerts",
		Params: []string{"etype"},
		Body:   "select * from EmergencyReports r where r.etype = $etype",
	}); err != nil {
		t.Fatal(err)
	}

	owner, err := New(Config{
		ID:          "owner",
		Backend:     env.cluster,
		Policy:      core.LSC{},
		CacheBudget: 1 << 20,
		Clock:       env.clk.Now,
		TTL:         core.TTLConfig{DefaultTTL: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.owner = owner
	// The owner answers peer lookups over real HTTP; count them at the
	// transport so singleflight assertions see exactly what left the edge.
	env.ownerHTTP = NewServer(owner)
	inner := env.ownerHTTP.Handler()
	env.ownerSrv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/peer/") {
			env.peerReqs.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(env.ownerSrv.Close)

	env.edgeCalls = &countingBackend{Cluster: env.cluster}
	edge, err := New(Config{
		ID:      "edge",
		Backend: env.edgeCalls,
		Policy:  core.NC{},
		Clock:   env.clk.Now,
		Fabric:  &FabricConfig{Peers: bdms.NewPeerClient(nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.edge = edge
	if !edge.SetRing(bcs.RingView{Epoch: 1, Brokers: []bcs.BrokerInfo{
		{ID: "owner", Address: env.ownerSrv.URL},
	}}) {
		t.Fatal("SetRing rejected the initial view")
	}
	mu.Lock()
	brokers = []*Broker{owner, edge}
	mu.Unlock()
	return env
}

func (env *fabricEnv) publish(t *testing.T, etype string, sev float64) {
	t.Helper()
	env.clk.Advance(time.Second)
	if _, err := env.cluster.Ingest("EmergencyReports", map[string]any{
		"etype": etype, "severity": sev,
	}); err != nil {
		t.Fatal(err)
	}
}

// A local miss on the edge is served from the owning sibling's cache: no
// cluster fetch on the miss path, a peer hit in the stats, and the same
// results the cluster would have produced.
func TestPeerLookupServesFromSibling(t *testing.T) {
	env := newFabricEnv(t)
	if _, err := env.owner.Subscribe("olga", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	fs, err := env.edge.Subscribe("edna", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		env.publish(t, "fire", float64(i))
	}

	before := env.edgeCalls.calls.Load()
	items, _, err := env.edge.GetResults("edna", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("got %d results via peer, want 3", len(items))
	}
	for i, item := range items {
		if sev, _ := item.Rows[0]["severity"].(float64); sev != float64(i+1) {
			t.Errorf("result %d severity %v, want %d", i, item.Rows[0]["severity"], i+1)
		}
	}
	if got := env.edgeCalls.calls.Load(); got != before {
		t.Errorf("miss path pulled from the cluster %d times, want 0 (peer should serve)", got-before)
	}
	if h := env.edge.Stats().PeerHits.Value(); h != 1 {
		t.Errorf("peer hits = %v, want 1", h)
	}
	if m := env.edge.Stats().PeerMisses.Value(); m != 0 {
		t.Errorf("peer misses = %v, want 0", m)
	}
	// Peer-served bytes count as miss volume but NOT fetch bytes — the
	// whole point is that the cluster was not asked.
	if fb := env.edge.Stats().FetchBytes.Value(); fb != 0 {
		t.Errorf("edge FetchBytes = %v after a peer-served miss, want 0", fb)
	}
}

// K concurrent identical misses collapse into exactly one peer request:
// the lookup rides inside the manager's singleflight and the short-TTL
// memo absorbs stragglers.
func TestPeerLookupSingleflight(t *testing.T) {
	env := newFabricEnv(t)
	if _, err := env.owner.Subscribe("olga", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	fs, err := env.edge.Subscribe("edna", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		env.publish(t, "fire", float64(i))
	}

	before := env.edgeCalls.calls.Load()
	const K = 16
	var wg sync.WaitGroup
	errs := make([]error, K)
	counts := make([]int, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			items, _, err := env.edge.GetResults("edna", fs)
			errs[i], counts[i] = err, len(items)
		}(i)
	}
	wg.Wait()
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("retrieval %d: %v", i, errs[i])
		}
		if counts[i] != 5 {
			t.Errorf("retrieval %d got %d results, want 5", i, counts[i])
		}
	}
	if got := env.peerReqs.Load(); got != 1 {
		t.Errorf("%d concurrent misses caused %d peer requests, want exactly 1", K, got)
	}
	if got := env.edgeCalls.calls.Load(); got != before {
		t.Errorf("miss path pulled from the cluster %d times, want 0", got-before)
	}
	// PeerHits counts lookups executed, not callers: the coalesced
	// callers share the one flight's answer.
	if h := env.edge.Stats().PeerHits.Value(); h != 1 {
		t.Errorf("peer hits = %v, want 1 (one coalesced lookup)", h)
	}
}

// The peer failure taxonomy end to end: a draining owner answers 503
// peer_draining, a cold owner 404 peer_cold (and neither stops the edge —
// it falls back to the cluster), and a chained lookup is refused with 400
// peer_loop.
func TestPeerTaxonomy(t *testing.T) {
	env := newFabricEnv(t)
	if _, err := env.owner.Subscribe("olga", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	fs, err := env.edge.Subscribe("edna", "Alerts", []any{"fire"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		env.publish(t, "fire", float64(i))
	}

	// Cold: the owner has no subscription under an unknown fabric key.
	pc := bdms.NewPeerClient(nil)
	_, err = pc.Results(context.Background(), env.ownerSrv.URL, "fk-no-such-key", 0, int64(time.Hour), true)
	if !bdms.IsPeerCold(err) {
		t.Errorf("unknown key error = %v, want peer_cold", err)
	}

	// Loop: a request that already carries a hop count is refused.
	req, _ := http.NewRequest(http.MethodGet,
		env.ownerSrv.URL+"/v1/peer/results/fk-x?after_ns=0&before_ns=1&inclusive=true", nil)
	req.Header.Set(bdms.PeerHopHeader, "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("hop-2 lookup = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body), bdms.CodePeerLoop) {
		t.Errorf("hop-2 body %q, want code %s", body, bdms.CodePeerLoop)
	}

	// Draining: the owner refuses peer traffic while handing off, and the
	// edge's miss path falls through to the cluster instead of failing.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	env.owner.Drain(ctx, "")
	_, err = pc.Results(context.Background(), env.ownerSrv.URL, "fk-x", 0, int64(time.Hour), true)
	if !bdms.IsPeerDraining(err) {
		t.Errorf("draining owner error = %v, want peer_draining", err)
	}

	before := env.edgeCalls.calls.Load()
	items, _, err := env.edge.GetResults("edna", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("got %d results, want 2 (cluster fallback)", len(items))
	}
	if got := env.edgeCalls.calls.Load(); got != before+1 {
		t.Errorf("cluster pulls = %d, want exactly 1 fallback fetch", got-before)
	}
	if m := env.edge.Stats().PeerMisses.Value(); m != 1 {
		t.Errorf("peer misses = %v, want 1", m)
	}
}

// FabricTick keeps the broker's ring fresh through the conditional fetch:
// the first tick pays a full GET, an unchanged ring costs a 304 (no view
// churn), and a membership change flows through on the next tick.
func TestFabricTick(t *testing.T) {
	svc := bcs.NewService()
	bcsSrv := httptest.NewServer(bcs.NewServer(svc).Handler())
	defer bcsSrv.Close()
	for _, id := range []string{"owner", "edge"} {
		if err := svc.Register(id, "http://"+id); err != nil {
			t.Fatal(err)
		}
	}
	cluster := bdms.NewCluster()
	b, err := New(Config{
		ID:      "edge",
		Backend: cluster,
		Policy:  core.NC{},
		Fabric:  &FabricConfig{BCS: bdms.NewBCSClient(bcsSrv.URL, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	changed, migrated, err := b.FabricTick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || migrated != 0 {
		t.Fatalf("first tick changed=%v migrated=%d, want true/0", changed, migrated)
	}
	ring := b.Ring()
	if len(ring.Brokers) != 2 || !ring.Has("edge") || !ring.Has("owner") {
		t.Fatalf("ring after tick = %+v", ring)
	}

	// Unchanged membership: the conditional fetch reports no change.
	changed, _, err = b.FabricTick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("second tick reported a change on an unchanged ring")
	}

	// A join flows through on the next tick.
	if err := svc.Register("third", "http://third"); err != nil {
		t.Fatal(err)
	}
	changed, _, err = b.FabricTick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || !b.Ring().Has("third") {
		t.Fatalf("join not observed: changed=%v ring=%+v", changed, b.Ring())
	}
}
