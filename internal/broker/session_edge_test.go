package broker

import (
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"gobad/internal/wsock"
)

// newEvent builds a standalone pooled event for direct-queue tests.
func newTestEvent(t *testing.T, h *sessionHub, bs string, latest int64) *pushEvent {
	t.Helper()
	ev, ok := h.newEvent(context.Background(), bs, latest, 1)
	if !ok {
		t.Fatalf("newEvent(%s, %d) failed", bs, latest)
	}
	return ev
}

// unscheduledSession builds a session outside the hub's writer pool (never
// attached, writers never started), so queued markers stay queued and the
// tests can assert on exact queue contents.
func unscheduledSession(h *sessionHub) (*session, net.Conn) {
	sNC, cNC := net.Pipe()
	return newSession(h, "edge", wsock.NewConn(sNC, false)), cNC
}

// TestSessionWriteQueueEdgeCases drives the session write queue through
// its boundary conditions: configuration floors, eviction at capacity one,
// enqueue racing close, and coalescing against a draining session. Run
// under the race tier.
func TestSessionWriteQueueEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"ZeroCapacityQueueSelectsDefault", func(t *testing.T) {
			// A zero (or negative) queue capacity must never mean "drop
			// everything": the hub floors it to DefaultPushQueue.
			for _, capacity := range []int{0, -5} {
				hub, _ := newTestHub(capacity)
				if hub.queueCap != DefaultPushQueue {
					t.Fatalf("queueCap(%d) = %d, want %d", capacity, hub.queueCap, DefaultPushQueue)
				}
				s, cNC := unscheduledSession(hub)
				defer cNC.Close()
				if !s.enqueue("fs1", newTestEvent(t, hub, "bs", 1)) {
					t.Fatal("enqueue on floored queue rejected a marker")
				}
				if got := s.queuedLen(); got != 1 {
					t.Fatalf("queuedLen = %d, want 1", got)
				}
			}
		}},
		{"CapacityOneEvictsOldestDistinct", func(t *testing.T) {
			// At capacity one every distinct frontend subscription evicts
			// the previous pending marker; only the newest survives.
			hub, _ := newTestHub(1)
			s, cNC := unscheduledSession(hub)
			defer cNC.Close()
			for i, fs := range []string{"fs1", "fs2", "fs3"} {
				if !s.enqueue(fs, newTestEvent(t, hub, "bs", int64(i+1))) {
					t.Fatalf("enqueue %s rejected", fs)
				}
			}
			if got := s.queuedLen(); got != 1 {
				t.Fatalf("queuedLen = %d, want 1", got)
			}
			if got := hub.stats.dropped.Load(); got != 2 {
				t.Fatalf("dropped = %d, want 2", got)
			}
			fs, ev, ok := s.pop()
			if !ok || fs != "fs3" || ev.latest != 3 {
				t.Fatalf("surviving marker = (%q, %v, %v), want fs3/3", fs, ev, ok)
			}
			s.wrote()
			ev.release()
		}},
		{"SameSubCoalescesAtCapacityOne", func(t *testing.T) {
			// Same frontend subscription at capacity one: latest-wins
			// replacement, no eviction, stale markers discarded.
			hub, _ := newTestHub(1)
			s, cNC := unscheduledSession(hub)
			defer cNC.Close()
			s.enqueue("fs1", newTestEvent(t, hub, "bs", 5))
			s.enqueue("fs1", newTestEvent(t, hub, "bs", 9))
			s.enqueue("fs1", newTestEvent(t, hub, "bs", 7)) // stale: discarded
			if got := hub.stats.dropped.Load(); got != 0 {
				t.Fatalf("dropped = %d, want 0", got)
			}
			if got := hub.stats.coalesced.Load(); got != 1 {
				t.Fatalf("coalesced = %d, want 1 (stale replay must not count)", got)
			}
			_, ev, ok := s.pop()
			if !ok || ev.latest != 9 {
				t.Fatalf("surviving marker latest = %v, want 9", ev.latest)
			}
			s.wrote()
			ev.release()
		}},
		{"EnqueueRacingClose", func(t *testing.T) {
			// Concurrent enqueues against close: no panic, no marker
			// accepted after close wins, and the queue is left empty (a
			// closed session must not pin pooled events).
			hub, _ := newTestHub(0)
			s, cNC := unscheduledSession(hub)
			defer cNC.Close()
			var wg sync.WaitGroup
			start := make(chan struct{})
			wg.Add(2)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 500; j++ {
					s.enqueue("fs1", newTestEvent(t, hub, "bs", int64(j)))
				}
			}()
			go func() {
				defer wg.Done()
				<-start
				s.close()
			}()
			close(start)
			wg.Wait()
			if s.enqueue("fs1", newTestEvent(t, hub, "bs", 999)) {
				t.Fatal("enqueue accepted a marker after close")
			}
			if got := s.queuedLen(); got != 0 {
				t.Fatalf("closed session still queues %d markers", got)
			}
		}},
		{"CoalesceAcrossDrainingSession", func(t *testing.T) {
			// Markers enqueued while the session drains must coalesce
			// latest-wins and flush before the migrate close frame.
			hub, _ := newTestHub(0)
			cNC := hubConn(t, hub, "alice", map[string]string{"bs1": "fs1"})

			ctx := context.Background()
			// First marker: a pool writer pops it and blocks on the unread
			// pipe, holding the session mid-flush.
			hub.broadcast(ctx, "bs1", 1)
			waitFor(t, func() bool { return hub.queueDepth() == 0 }, "writer to pop the first marker")
			// Queue two more while blocked: they must merge to one.
			hub.broadcast(ctx, "bs1", 2)
			hub.broadcast(ctx, "bs1", 3)

			drainCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			done := make(chan int, 1)
			go func() { done <- hub.drain(drainCtx, "ws://successor") }()

			// The subscriber must see marker 1, the coalesced marker 3,
			// and then the migrate close frame naming the successor.
			conn := wsock.NewConn(cNC, true)
			_ = cNC.SetReadDeadline(time.Now().Add(5 * time.Second))
			var latests []int64
			for {
				_, payload, err := conn.ReadMessage()
				if err != nil {
					break
				}
				var n PushNotification
				if err := json.Unmarshal(payload, &n); err != nil {
					t.Fatalf("bad push payload: %v", err)
				}
				latests = append(latests, n.LatestNS)
			}
			if len(latests) != 2 || latests[0] != 1 || latests[1] != 3 {
				t.Fatalf("delivered markers = %v, want [1 3]", latests)
			}
			if code, reason := conn.CloseStatus(); code != wsock.CloseServiceRestart || reason != "ws://successor" {
				t.Fatalf("close frame = (%d, %q), want (%d, ws://successor)", code, reason, wsock.CloseServiceRestart)
			}
			if n := <-done; n != 1 {
				t.Fatalf("drain migrated %d sessions, want 1", n)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}
