// Package broker implements the BAD broker node: the edge component that
// connects end subscribers to the data cluster. It has two halves, exactly
// as Section III describes — a client-facing part (REST + WebSocket push,
// server.go) that manages BAD clients, their frontend subscriptions and
// notification delivery, and a backend-facing part that subscribes to the
// data cluster on the clients' behalf, registers a webhook callback and
// pulls new channel results when notified.
//
// The broker suppresses duplicate subscriptions: frontend subscriptions
// with the same (channel, parameters) share one backend subscription, and
// its results are cached once in an in-memory result cache (internal/core)
// and shared by all attached subscribers.
package broker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gobad/internal/bdms"
	"gobad/internal/core"
	"gobad/internal/metrics"
	"gobad/internal/obs"
	"gobad/internal/obs/span"
	"gobad/internal/wsock"
)

// Backend is the data cluster abstraction the broker consumes (Section
// III-A). *bdms.Cluster satisfies it directly (in-process deployments) and
// *bdms.Client satisfies it over REST.
type Backend interface {
	Subscribe(channel string, params []any, callback string) (string, error)
	Unsubscribe(subID string) error
	Results(subID string, from, to time.Duration, inclusiveTo bool) ([]bdms.ResultObject, error)
	LatestTimestamp(subID string) (time.Duration, error)
}

// ResultsBackendContext is implemented by backends whose result pulls can be
// bound to a context (cancellation, deadlines). The broker upgrades to it
// when available — the optional-interface pattern — so plain Backends keep
// working unchanged. *bdms.Client implements it over REST.
type ResultsBackendContext interface {
	ResultsContext(ctx context.Context, subID string, from, to time.Duration, inclusiveTo bool) ([]bdms.ResultObject, error)
}

// Interface compliance.
var (
	_ Backend               = (*bdms.Cluster)(nil)
	_ Backend               = (*bdms.Client)(nil)
	_ ResultsBackendContext = (*bdms.Cluster)(nil)
	_ ResultsBackendContext = (*bdms.Client)(nil)
)

// Config configures a Broker.
type Config struct {
	// ID is the broker's identifier (required).
	ID string
	// Backend is the data cluster connection (required).
	Backend Backend
	// CallbackURL is the webhook URL the data cluster should invoke for
	// new results; it must route to this broker's HTTP handler at
	// /v1/callbacks/results (the legacy /callbacks/results alias also
	// works). Leave empty for in-process backends driven by a direct
	// Notifier.
	CallbackURL string
	// Policy is the caching policy (required), e.g. core.LSC{}.
	Policy core.Policy
	// CacheBudget is the allowed total cache size B in bytes.
	CacheBudget int64
	// TTL tunes TTL-based policies.
	TTL core.TTLConfig
	// BackendRTT and BackendBandwidth estimate the cost of fetching an
	// object from the data cluster; they parameterize the per-object
	// fetch latency l_ij used by the LSD policy. Defaults: 500ms and
	// 10 MB/s (Table II).
	BackendRTT       time.Duration
	BackendBandwidth float64 // bytes per second
	// CacheShards is the number of lock stripes of the cache manager;
	// <= 0 selects core.DefaultShards.
	CacheShards int
	// Clock overrides the broker-local clock (tests/simulation); the
	// default is wall time since construction.
	Clock func() time.Duration
	// Logger receives the broker's structured log lines (slow-fetch
	// warnings, backend errors). Lines carry trace/request IDs when the
	// triggering context has them. nil discards.
	Logger *slog.Logger
	// SlowFetchThreshold is the wall-clock duration above which a data
	// cluster pull is logged as slow; <= 0 selects one second.
	SlowFetchThreshold time.Duration
	// StaleServe degrades gracefully when the data cluster is
	// unreachable: a retrieval whose backend fetch fails is answered
	// from the cache alone and marked stale instead of erroring. The
	// returned marker stays 0, so the subscriber cannot ack past the
	// missed range — the older objects are re-delivered once the
	// cluster recovers (at-least-once, possible duplicates).
	StaleServe bool
	// PushQueue bounds each WebSocket session's outbound notification
	// queue (distinct frontend subscriptions with a pending marker);
	// <= 0 selects DefaultPushQueue. Markers beyond the bound evict the
	// oldest pending one (latest-wins, recoverable via GetResults).
	PushQueue int
	// PushWriters sizes the shared pool of writer goroutines that drains
	// session push queues; <= 0 selects a GOMAXPROCS-derived default. The
	// pool is what keeps a million sessions from meaning a million
	// goroutines.
	PushWriters int
	// PushWriteTimeout bounds one pooled writer's socket write so a
	// stalled subscriber cannot pin a shared writer; <= 0 selects
	// DefaultPushWriteTimeout. Past the deadline the write fails and the
	// session is dropped (the client reconnects and catches up).
	PushWriteTimeout time.Duration
	// Fabric connects the broker to the cooperative edge fabric: HRW
	// placement, session rebalance and broker-to-broker peer lookup on
	// cache misses. nil runs the broker standalone.
	Fabric *FabricConfig
	// WarmupMaxBytes bounds the warm cache snapshot shipped on drain and
	// the intake stash of not-yet-consumed warm entries; <= 0 selects
	// DefaultWarmupMaxBytes.
	WarmupMaxBytes int64
	// WarmupMaxAge is how stale an incoming warm snapshot may be before
	// it is rejected wholesale; <= 0 selects DefaultWarmupMaxAge.
	WarmupMaxAge time.Duration
}

// Broker is a BAD broker node.
type Broker struct {
	id          string
	backend     Backend
	callbackURL string
	manager     *core.Manager
	stats       *metrics.CacheStats
	clock       func() time.Duration
	log         *slog.Logger
	slowFetch   time.Duration

	rtt time.Duration
	bw  float64

	mu sync.Mutex
	// backendSubs deduplicates by subscription key.
	backendSubs map[string]*backendSub // key -> sub
	backendByID map[string]*backendSub // backend subscription id -> sub
	// byFabric indexes live backend subscriptions by their fabric-wide
	// key (FabricKey), the identity peer brokers address caches with.
	byFabric map[string]*backendSub
	frontend map[string]*frontendSub
	// subIndex maps subscriber -> backend subscription id -> frontend
	// subscription id: the subscriber's interest set, read once when its
	// WebSocket attaches so the session hub can index the session under
	// each backend-subscription key.
	subIndex map[string]map[string]string
	fsSeq    uint64

	sessions *sessionHub
	// push overrides notification delivery (experiments); nil means
	// WebSocket sessions.
	push func(subscriber string, n PushNotification) bool

	// failover tallies resume/backfill/drain activity.
	failover *obs.FailoverStats
	// draining is set once Drain starts: new subscriptions and WebSocket
	// attaches are refused so clients fail over to another broker.
	draining atomic.Bool

	// fabric is the cooperative-edge state (ring view, peer lookup memo);
	// nil outside a fabric (single-broker mode).
	fabric *fabric

	// subFlights singleflights backend-subscription creation per key: K
	// concurrent resumes of the same (channel, params) yield one cluster
	// subscribe, the rest wait and share it.
	subFlights map[string]*subFlight
	// warm is the bounded stash of handed-off cache entries awaiting a
	// matching subscribe; warmupStats tallies hits/misses/intake.
	warm         *warmStore
	warmupStats  WarmupStats
	warmupMaxAge time.Duration
	// warming is the cold-start readiness state: true while the broker is
	// still restoring warm state, reported on /v1/healthz and excluded
	// from BCS placement.
	warming atomic.Bool

	// traces/stages are the delivery-tracing hooks (nil-safe; set once
	// via SetTracing before traffic flows).
	traces *span.Recorder
	stages *span.Stages
}

// SetTracing wires the broker's span recorder and per-stage delivery
// histogram (both may be nil). NewServer calls it with the observer's
// recorder; call it before traffic flows.
func (b *Broker) SetTracing(traces *span.Recorder, stages *span.Stages) {
	b.traces = traces
	b.stages = stages
	b.sessions.traces = traces
	b.sessions.stages = stages
}

// backendSub is one deduplicated subscription at the data cluster with its
// result cache marker.
type backendSub struct {
	key string
	id  string // data cluster subscription id
	// fkey is the fabric-wide cache identity (FabricKey over channel and
	// params), shared by every broker subscribed to the same channel.
	fkey    string
	channel string
	params  []any
	// bts is the newest result timestamp already pulled into the cache.
	bts time.Duration
	// refs counts attached frontend subscriptions.
	refs int
	// attached maps subscriber -> its frontend subscription id, used for
	// notification fan-out and per-subscriber dedup.
	attached map[string]string
	// pullMu serializes webhook-triggered pulls for this subscription so
	// concurrent notifications cannot interleave out-of-order Puts.
	pullMu sync.Mutex
}

// subFlight is one in-progress backend-subscription creation; waiters
// block on done and re-read the map once the leader finishes.
type subFlight struct {
	done chan struct{}
}

// frontendSub is one subscriber's subscription through this broker.
type frontendSub struct {
	id         string
	subscriber string
	bs         *backendSub
	// fts is the newest result timestamp the subscriber has acknowledged.
	fts time.Duration
}

// New validates cfg, applies opts on top of it and returns a ready Broker.
func New(cfg Config, opts ...Option) (*Broker, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.ID == "" {
		return nil, errors.New("broker: Config.ID is required")
	}
	if cfg.Backend == nil {
		return nil, errors.New("broker: Config.Backend is required")
	}
	if cfg.Policy == nil {
		return nil, errors.New("broker: Config.Policy is required")
	}
	if cfg.BackendRTT <= 0 {
		cfg.BackendRTT = 500 * time.Millisecond
	}
	if cfg.BackendBandwidth <= 0 {
		cfg.BackendBandwidth = 10 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	if cfg.SlowFetchThreshold <= 0 {
		cfg.SlowFetchThreshold = time.Second
	}
	b := &Broker{
		id:          cfg.ID,
		backend:     cfg.Backend,
		callbackURL: cfg.CallbackURL,
		stats:       &metrics.CacheStats{},
		rtt:         cfg.BackendRTT,
		bw:          cfg.BackendBandwidth,
		backendSubs: make(map[string]*backendSub),
		backendByID: make(map[string]*backendSub),
		byFabric:    make(map[string]*backendSub),
		frontend:    make(map[string]*frontendSub),
		subIndex:    make(map[string]map[string]string),
		log:         obs.WrapLogger(cfg.Logger),
		slowFetch:   cfg.SlowFetchThreshold,
		failover:    &obs.FailoverStats{},
		subFlights:  make(map[string]*subFlight),
		warm:        newWarmStore(cfg.WarmupMaxBytes),
	}
	b.warmupMaxAge = cfg.WarmupMaxAge
	if b.warmupMaxAge <= 0 {
		b.warmupMaxAge = DefaultWarmupMaxAge
	}
	b.sessions = newSessionHub(cfg.PushQueue, &b.stats.Delivered, b.log)
	if cfg.PushWriters > 0 {
		b.sessions.writers = cfg.PushWriters
	}
	if cfg.PushWriteTimeout > 0 {
		b.sessions.writeTimeout = cfg.PushWriteTimeout
	}
	if cfg.Fabric != nil {
		b.fabric = newFabric(b, *cfg.Fabric)
	}
	if cfg.Clock != nil {
		b.clock = cfg.Clock
	} else {
		epoch := time.Now()
		b.clock = func() time.Duration { return time.Since(epoch) }
	}
	mgr, err := core.NewManager(core.Config{
		Policy:     cfg.Policy,
		Budget:     cfg.CacheBudget,
		Fetcher:    core.FetcherFunc(b.fetchFromBackend),
		TTL:        cfg.TTL,
		Stats:      b.stats,
		Shards:     cfg.CacheShards,
		StaleServe: cfg.StaleServe,
	})
	if err != nil {
		return nil, fmt.Errorf("broker: %w", err)
	}
	b.manager = mgr
	return b, nil
}

// ID returns the broker's identifier.
func (b *Broker) ID() string { return b.id }

// Stats returns the broker's cache statistics.
func (b *Broker) Stats() *metrics.CacheStats { return b.stats }

// PushStats snapshots the WebSocket push pipeline's counters.
func (b *Broker) PushStats() PushStats { return b.sessions.snapshot() }

// Failover exposes the broker's failover/drain tallies.
func (b *Broker) Failover() *obs.FailoverStats { return b.failover }

// Draining reports whether a graceful drain has started.
func (b *Broker) Draining() bool { return b.draining.Load() }

// Drain gracefully hands the broker's live sessions over to successor (a
// BCS-assigned broker base URL; may be empty when no peer is live, in which
// case clients fall back to BCS discovery). New subscriptions and WebSocket
// attaches are refused from the first call on; every live session has its
// pending push markers flushed (bounded by ctx) and is then closed with a
// migrate frame naming the successor. It returns the number of migrated
// sessions.
func (b *Broker) Drain(ctx context.Context, successor string) int {
	b.draining.Store(true)
	n := b.sessions.drain(ctx, successor)
	b.failover.DrainMigrated.Add(uint64(n))
	return n
}

// AttachSession registers a subscriber's WebSocket connection with the
// push hub and indexes it under the subscriber's current subscriptions
// (the hub's interest index is what broadcast resolves audiences from).
// Any previous session of the same subscriber is closed. It reports false
// while the broker is draining: the connection is closed immediately with
// a migrate frame naming the successor.
func (b *Broker) AttachSession(subscriber string, conn *wsock.Conn) bool {
	if !b.sessions.attach(subscriber, conn, nil) {
		return false
	}
	// Index the session under the subscriber's interests. Ordering with a
	// concurrent Subscribe is safe in both directions: a Subscribe that
	// updated subIndex before this read is included here, one that updates
	// it after necessarily finds the session attached and registers it
	// itself (register is idempotent).
	b.mu.Lock()
	interests := make(map[string]string, len(b.subIndex[subscriber]))
	for bsID, fsID := range b.subIndex[subscriber] {
		interests[bsID] = fsID
	}
	b.mu.Unlock()
	for bsID, fsID := range interests {
		b.sessions.register(subscriber, bsID, fsID)
	}
	return true
}

// DetachSession removes the subscriber's session if it still owns conn
// (a newer attach replaces the session; the old reader's detach must not
// tear the new one down).
func (b *Broker) DetachSession(subscriber string, conn *wsock.Conn) {
	b.sessions.detach(subscriber, conn)
}

// Online reports whether the subscriber currently has a live WebSocket
// session on this broker.
func (b *Broker) Online(subscriber string) bool { return b.sessions.online(subscriber) }

// Manager exposes the cache manager (experiments and operational
// endpoints).
func (b *Broker) Manager() *core.Manager { return b.manager }

// Now returns the broker-local time offset.
func (b *Broker) Now() time.Duration { return b.clock() }

// NumSubscribers returns how many distinct subscribers hold frontend
// subscriptions.
func (b *Broker) NumSubscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	seen := map[string]struct{}{}
	for _, fs := range b.frontend {
		seen[fs.subscriber] = struct{}{}
	}
	return len(seen)
}

// NumFrontendSubs and NumBackendSubs report the subscription-suppression
// ratio (the prototype experiment quotes ~3500 frontend vs ~800 backend).
func (b *Broker) NumFrontendSubs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.frontend)
}

// NumBackendSubs returns the number of deduplicated backend subscriptions.
func (b *Broker) NumBackendSubs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.backendSubs)
}

// subKey canonicalizes (channel, params) for suppression.
func subKey(channel string, params []any) string {
	enc, err := json.Marshal(params)
	if err != nil {
		enc = []byte(fmt.Sprintf("%v", params))
	}
	return channel + "|" + string(enc)
}

// NoResume is the resume argument of a plain Subscribe: no token, the
// subscriber is owed only results produced after it joins.
const NoResume = time.Duration(-1)

// ErrDraining is returned while the broker refuses new work because it is
// draining for shutdown; clients fail over to another broker.
var ErrDraining = errors.New("broker: draining for shutdown")

// Subscribe creates a frontend subscription for subscriber to (channel,
// params), creating (or sharing) the backend subscription. It returns the
// frontend subscription ID. A subscriber re-subscribing to the same
// (channel, params) gets its existing frontend subscription back.
func (b *Broker) Subscribe(subscriber, channel string, params []any) (string, error) {
	return b.SubscribeResume(context.Background(), subscriber, channel, params, NoResume)
}

// SubscribeResume is Subscribe extended with the failover resume protocol:
// resume is the newest result timestamp the subscriber has already seen
// (its last acked marker), or NoResume. With a token, the subscriber's ack
// marker is rewound (never advanced) to it and the broker backfills the
// missed range from the cluster's result dataset into the result cache,
// then re-arms live push — so a subscriber landing on a successor broker
// after a failure loses nothing (at-least-once; the client dedups by
// timestamp).
func (b *Broker) SubscribeResume(ctx context.Context, subscriber, channel string, params []any, resume time.Duration) (string, error) {
	if subscriber == "" || channel == "" {
		return "", errors.New("broker: Subscribe needs subscriber and channel")
	}
	if b.draining.Load() {
		return "", ErrDraining
	}
	now := b.clock()
	b.mu.Lock()
	key := subKey(channel, params)
	bs := b.backendSubs[key]
	// Singleflight: while another goroutine is creating the backend
	// subscription for this key, wait for it instead of racing a duplicate
	// cluster subscribe — K concurrent resumes of one key collapse to one
	// cluster round trip.
	for bs == nil {
		fl := b.subFlights[key]
		if fl == nil {
			break // no flight in progress: this goroutine leads
		}
		b.mu.Unlock()
		<-fl.done
		b.mu.Lock()
		bs = b.backendSubs[key]
		// A failed leader leaves the map empty; loop to lead (or wait on
		// a newer flight).
	}
	created := false
	if bs == nil {
		// First frontend subscription for this (channel, params):
		// subscribe at the data cluster. Release the lock across the
		// network calls; the flight entry keeps followers parked.
		fl := &subFlight{done: make(chan struct{})}
		b.subFlights[key] = fl
		b.mu.Unlock()
		backendID, err := b.backend.Subscribe(channel, params, b.callbackURL)
		if err != nil {
			b.mu.Lock()
			delete(b.subFlights, key)
			close(fl.done)
			b.mu.Unlock()
			return "", fmt.Errorf("broker: backend subscribe: %w", err)
		}
		// The (channel, params) result dataset outlives brokers, so the
		// cluster may already hold history — owed only to resuming
		// subscribers. Start the backend marker at the cluster's newest
		// timestamp (fresh joiners get nothing old), rewound to the resume
		// token when one is presented so the backfill covers the gap.
		start := time.Duration(0)
		if latest, lerr := b.backend.LatestTimestamp(backendID); lerr == nil {
			start = latest
		} else {
			b.log.WarnContext(ctx, "latest-timestamp probe failed; assuming empty result dataset",
				slog.String("backend_sub", backendID), slog.Any("error", lerr))
		}
		if resume >= 0 && resume < start {
			start = resume
		}
		b.mu.Lock()
		delete(b.subFlights, key)
		// Re-check: belt and braces against a Subscribe that slipped past
		// the flight (e.g. an older code path).
		if existing := b.backendSubs[key]; existing != nil {
			// Lost the race: withdraw our duplicate backend sub.
			close(fl.done)
			b.mu.Unlock()
			_ = b.backend.Unsubscribe(backendID)
			b.mu.Lock()
			bs = existing
		} else {
			bs = &backendSub{
				key: key, id: backendID, fkey: fabricHash(key),
				channel: channel, params: params,
				bts:      start,
				attached: make(map[string]string),
			}
			b.backendSubs[key] = bs
			b.backendByID[backendID] = bs
			b.byFabric[bs.fkey] = bs
			created = true
			close(fl.done)
		}
	}
	if fsID, dup := bs.attached[subscriber]; dup {
		fs := b.frontend[fsID]
		if resume >= 0 && resume < fs.fts {
			fs.fts = resume
		}
		b.mu.Unlock()
		if resume >= 0 {
			b.finishResume(ctx, bs, fsID)
		}
		return fsID, nil
	}
	b.fsSeq++
	fs := &frontendSub{
		id:         fmt.Sprintf("%s-fs%06d", b.id, b.fsSeq),
		subscriber: subscriber,
		bs:         bs,
		fts:        bs.bts, // only results after joining are owed
	}
	if resume >= 0 && resume < fs.fts {
		fs.fts = resume
	}
	b.frontend[fs.id] = fs
	bs.refs++
	bs.attached[subscriber] = fs.id
	si := b.subIndex[subscriber]
	if si == nil {
		si = make(map[string]string, 1)
		b.subIndex[subscriber] = si
	}
	si[bs.id] = fs.id
	b.mu.Unlock()

	// Index an already-online session under the new interest so pushes
	// reach it without a reconnect (no-op while the subscriber is offline).
	b.sessions.register(subscriber, bs.id, fs.id)
	b.manager.Subscribe(bs.id, subscriber, now)
	if created {
		// A warm handoff may have left this key's cache contents in the
		// stash; seed them before any backfill so the resume range fetch
		// finds nothing left to pull.
		b.consumeWarm(ctx, bs)
	}
	if resume >= 0 {
		b.finishResume(ctx, bs, fs.id)
	}
	return fs.id, nil
}

// finishResume closes a resumed subscription's gap: it range-fetches what
// the result cache is missing from the cluster, clamps the ack marker into
// the valid range and re-arms live push toward the resumed subscriber with
// the current backend marker.
func (b *Broker) finishResume(ctx context.Context, bs *backendSub, fsID string) {
	b.failover.Resumes.Add(1)
	b.backfillGap(ctx, bs)
	b.mu.Lock()
	fs, ok := b.frontend[fsID]
	if !ok {
		b.mu.Unlock()
		return
	}
	if fs.fts > bs.bts {
		fs.fts = bs.bts
	}
	pending := fs.fts < bs.bts
	latest := bs.bts
	sub := fs.subscriber
	b.mu.Unlock()
	if pending {
		// A live notification racing the backfill can duplicate this push;
		// harmless — GetResults over (fts, bts] is idempotent.
		if b.push != nil {
			b.fanout(ctx, bs.id, map[string]string{sub: fsID}, latest)
		} else {
			b.sessions.broadcastTo(ctx, bs.id, sub, fsID, int64(latest))
		}
	}
}

// backfillGap pulls (bts, cluster-latest] into the result cache under the
// pull lock. For a backend subscription just created with its marker
// rewound to a resume token this is exactly the range the resuming
// subscriber missed while its broker was down.
func (b *Broker) backfillGap(ctx context.Context, bs *backendSub) {
	bs.pullMu.Lock()
	defer bs.pullMu.Unlock()
	latest, err := b.backend.LatestTimestamp(bs.id)
	if err != nil {
		b.log.WarnContext(ctx, "resume backfill: latest-timestamp probe failed",
			slog.String("backend_sub", bs.id), slog.Any("error", err))
		return
	}
	b.mu.Lock()
	from := bs.bts
	b.mu.Unlock()
	if latest <= from {
		return
	}
	now := b.clock()
	if _, isNC := b.manager.Policy().(core.NC); !isNC {
		results, err := b.backendResults(ctx, bs.id, from, latest, true)
		if err != nil {
			// Leave the marker behind: the next notification or a miss-path
			// fetch retries the range, so at-least-once still holds.
			b.log.WarnContext(ctx, "resume backfill failed",
				slog.String("backend_sub", bs.id),
				slog.Duration("from", from), slog.Duration("to", latest),
				slog.Any("error", err))
			return
		}
		for _, r := range results {
			obj := &core.Object{
				ID: r.ID, Timestamp: r.Timestamp, Size: r.Size,
				FetchLatency: b.fetchLatency(r.Size), Payload: r.Rows,
			}
			if err := b.manager.Put(bs.id, obj, now); err != nil {
				b.log.WarnContext(ctx, "resume backfill: cache put failed",
					slog.String("backend_sub", bs.id), slog.String("object", r.ID),
					slog.Any("error", err))
				return
			}
			b.stats.VolumeBytes.Add(float64(r.Size))
			b.stats.FetchBytes.Add(float64(r.Size))
			b.failover.Backfilled.Add(1)
		}
	}
	b.mu.Lock()
	if latest > bs.bts {
		bs.bts = latest
	}
	b.mu.Unlock()
}

// Unsubscribe removes a frontend subscription; when the last attached
// frontend subscription goes away the backend subscription is withdrawn
// and its cache dropped.
func (b *Broker) Unsubscribe(subscriber, fsID string) error {
	now := b.clock()
	b.mu.Lock()
	fs, ok := b.frontend[fsID]
	if !ok || fs.subscriber != subscriber {
		b.mu.Unlock()
		return fmt.Errorf("broker: unknown frontend subscription %q", fsID)
	}
	delete(b.frontend, fsID)
	bs := fs.bs
	delete(bs.attached, subscriber)
	if si := b.subIndex[subscriber]; si != nil {
		delete(si, bs.id)
		if len(si) == 0 {
			delete(b.subIndex, subscriber)
		}
	}
	bs.refs--
	last := bs.refs == 0
	if last {
		delete(b.backendSubs, bs.key)
		delete(b.backendByID, bs.id)
		delete(b.byFabric, bs.fkey)
	}
	b.mu.Unlock()

	b.sessions.deregister(subscriber, bs.id)
	b.manager.Unsubscribe(bs.id, subscriber, now)
	if last {
		b.manager.DropCache(bs.id, now)
		if err := b.backend.Unsubscribe(bs.id); err != nil {
			return fmt.Errorf("broker: backend unsubscribe: %w", err)
		}
	}
	return nil
}

// ResultItem is one result object as delivered to a subscriber.
type ResultItem struct {
	ID          string           `json:"id"`
	TimestampNS int64            `json:"timestamp_ns"`
	Size        int64            `json:"size"`
	Rows        []map[string]any `json:"rows,omitempty"`
	// FromCache reports whether the object was served from the broker
	// cache (true) or re-fetched from the data cluster (false).
	FromCache bool `json:"from_cache"`
}

// GetResults is GetResultsContext with a background context.
func (b *Broker) GetResults(subscriber, fsID string) ([]ResultItem, time.Duration, error) {
	return b.GetResultsContext(context.Background(), subscriber, fsID)
}

// GetResultsContext is RetrieveContext without the staleness marker, kept
// for existing call sites; stale serves (StaleServe on) surface here as an
// error-free answer with a zero marker.
func (b *Broker) GetResultsContext(ctx context.Context, subscriber, fsID string) ([]ResultItem, time.Duration, error) {
	ret, err := b.RetrieveContext(ctx, subscriber, fsID)
	return ret.Items, ret.Latest, err
}

// Retrieval is a retrieval's full answer.
type Retrieval struct {
	// Items are the results, oldest first.
	Items []ResultItem
	// Latest is the marker the subscriber should Ack; it stays 0 when
	// nothing may be acked (fetch failure or stale serve), so the
	// undelivered range is retried on the next retrieval.
	Latest time.Duration
	// Stale reports a degraded answer: the backend fetch failed and
	// Items is the cached portion only. Older objects may follow once
	// the data cluster recovers.
	Stale bool
}

// RetrieveContext implements Algorithm 1's GETRESULTS: it returns the
// results of fsID's backend subscription in (fts, bts], serving from the
// cache where possible. ctx bounds any miss re-fetch from the data cluster.
// The subscriber must Ack the returned latest timestamp to advance its
// marker.
//
// Under StaleServe a backend-fetch failure degrades instead of erroring:
// the cached portion is returned with Stale set and a zero marker, so the
// subscriber sees results — never an error — while the missed older range
// stays pending for redelivery.
func (b *Broker) RetrieveContext(ctx context.Context, subscriber, fsID string) (Retrieval, error) {
	now := b.clock()
	b.mu.Lock()
	fs, ok := b.frontend[fsID]
	if !ok || fs.subscriber != subscriber {
		b.mu.Unlock()
		return Retrieval{}, fmt.Errorf("broker: unknown frontend subscription %q", fsID)
	}
	bsID := fs.bs.id
	from, to := fs.fts, fs.bs.bts
	b.mu.Unlock()

	// Cache resolution runs in its own span, renamed to the outcome once
	// it is known (cache.local_hit / cache.peer_hop / cache.cluster_fetch
	// / cache.stale_serve), so a trace shows where this retrieval's bytes
	// actually came from. The same outcome labels the retrieve stage of
	// the delivery-latency histogram.
	ctx, sp := b.traces.Start(ctx, "broker.retrieve")
	sp.SetAttr("backend_sub", bsID)
	resolveStart := time.Now()

	// On a backend-fetch failure the manager still returns the cached
	// part; pass it through (with the error, or marked stale under
	// StaleServe) so the subscriber keeps what the cache could serve.
	objs, info, err := b.manager.Retrieve(ctx, bsID, subscriber, from, to, now)

	outcome := retrieveOutcome(objs, info)
	sp.SetName("cache." + outcome)
	sp.SetAttr("objects", strconv.Itoa(len(objs)))
	sp.SetError(err)
	sp.End()
	b.stages.Observe(ctx, span.StageRetrieve, outcome, time.Since(resolveStart))

	items := make([]ResultItem, 0, len(objs))
	for _, o := range objs {
		rows, _ := o.Payload.([]map[string]any)
		items = append(items, ResultItem{
			ID:          o.ID,
			TimestampNS: int64(o.Timestamp),
			Size:        o.Size,
			Rows:        rows,
			FromCache:   o.CacheID != "", // fetched objects carry no cache id
		})
	}
	if err != nil {
		// Partial answer: cached items only. Returning to as the marker
		// would be wrong — the missed range was never delivered — so the
		// caller must not ack past what it received.
		return Retrieval{Items: items}, err
	}
	if info.Stale {
		b.log.WarnContext(ctx, "serving stale results after backend fetch failure",
			"backend_sub", bsID, "subscriber", subscriber,
			"served", len(items), "error", info.FetchErr)
		return Retrieval{Items: items, Stale: true}, nil
	}
	return Retrieval{Items: items, Latest: to}, nil
}

// retrieveOutcome classifies how a retrieval's objects were resolved,
// strongest first: a degraded stale answer trumps everything; otherwise
// any peer-served object marks the retrieval a peer hop, any fetched
// (uncached) object a cluster fetch, and a fully-cached answer a local
// hit.
func retrieveOutcome(objs []*core.Object, info core.RetrievalInfo) string {
	if info.Stale {
		return span.OutcomeStaleServe
	}
	outcome := span.OutcomeLocalHit
	for _, o := range objs {
		if o.Peer {
			return span.OutcomePeerHop
		}
		if o.CacheID == "" { // fetched objects carry no cache id
			outcome = span.OutcomeClusterFetch
		}
	}
	return outcome
}

// BackendSubID returns the data cluster subscription ID a frontend
// subscription attaches to. Push notifications over WebSocket carry this
// shared ID, so clients route them with it.
func (b *Broker) BackendSubID(subscriber, fsID string) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fs, ok := b.frontend[fsID]
	if !ok || fs.subscriber != subscriber {
		return "", fmt.Errorf("broker: unknown frontend subscription %q", fsID)
	}
	return fs.bs.id, nil
}

// Marker returns fsID's current acknowledged-results marker. At subscribe
// time this is the subscriber's initial resume token: the newest result
// timestamp it is NOT owed.
func (b *Broker) Marker(subscriber, fsID string) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fs, ok := b.frontend[fsID]
	if !ok || fs.subscriber != subscriber {
		return 0, fmt.Errorf("broker: unknown frontend subscription %q", fsID)
	}
	return fs.fts, nil
}

// Ack advances fsID's retrieval marker to ts (never backwards, never past
// the backend marker).
func (b *Broker) Ack(subscriber, fsID string, ts time.Duration) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	fs, ok := b.frontend[fsID]
	if !ok || fs.subscriber != subscriber {
		return fmt.Errorf("broker: unknown frontend subscription %q", fsID)
	}
	if ts > fs.bs.bts {
		ts = fs.bs.bts
	}
	if ts > fs.fts {
		fs.fts = ts
	}
	return nil
}

// HandleNotification is HandleNotificationContext with a background
// context.
func (b *Broker) HandleNotification(backendSubID string, latest time.Duration) error {
	return b.HandleNotificationContext(context.Background(), backendSubID, latest)
}

// HandleNotificationContext reacts to the data cluster's webhook: pull the
// new results (bts, latest] into the cache (PULL model), advance the
// backend marker and push "new results" notifications to the attached
// online subscribers. ctx bounds the pull from the data cluster; a
// cancelled pull aborts before any object is admitted.
func (b *Broker) HandleNotificationContext(ctx context.Context, backendSubID string, latest time.Duration) (err error) {
	ctx, sp := b.traces.Start(ctx, "broker.notify")
	sp.SetAttr("backend_sub", backendSubID)
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	now := b.clock()
	b.mu.Lock()
	bs, ok := b.backendByID[backendSubID]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("broker: notification for unknown subscription %q", backendSubID)
	}
	b.mu.Unlock()

	// Serialize pulls per backend subscription: concurrent notifications
	// must not interleave their Puts.
	bs.pullMu.Lock()
	defer bs.pullMu.Unlock()
	b.mu.Lock()
	from := bs.bts
	b.mu.Unlock()
	if latest <= from {
		return nil // stale or duplicate notification
	}

	if _, isNC := b.manager.Policy().(core.NC); !isNC {
		results, err := b.backendResults(ctx, backendSubID, from, latest, true)
		if err != nil {
			return fmt.Errorf("broker: pull results: %w", err)
		}
		for _, r := range results {
			obj := &core.Object{
				ID:           r.ID,
				Timestamp:    r.Timestamp,
				Size:         r.Size,
				FetchLatency: b.fetchLatency(r.Size),
				Payload:      r.Rows,
			}
			if err := b.manager.Put(backendSubID, obj, now); err != nil {
				return fmt.Errorf("broker: cache put: %w", err)
			}
			b.stats.VolumeBytes.Add(float64(r.Size))
			b.stats.FetchBytes.Add(float64(r.Size))
		}
	}

	b.mu.Lock()
	if latest > bs.bts {
		bs.bts = latest
	}
	notifyList := b.notifyTargets(bs)
	b.mu.Unlock()

	b.fanout(ctx, backendSubID, notifyList, latest)
	return nil
}

// notifyTargets snapshots bs.attached (subscriber -> frontend sub) for the
// synchronous push-func delivery path. The WebSocket path resolves its
// audience from the session hub's interest index instead, so when no
// push-func is installed the per-event copy is skipped entirely. Called
// with b.mu held.
func (b *Broker) notifyTargets(bs *backendSub) map[string]string {
	if b.push == nil {
		return nil
	}
	targets := make(map[string]string, len(bs.attached))
	for sub, fsID := range bs.attached {
		targets[sub] = fsID
	}
	return targets
}

// fanout pushes one "new results" event to the attached subscribers. On
// the WebSocket path the audience is resolved inside the session hub by
// its interest index — one map lookup keyed by the backend subscription,
// no per-event copy of the attached set — the payload is encoded once per
// event, and enqueueing never blocks; delivery (and the Delivered counter)
// happens on the hub's pooled writer goroutines. A push-func override
// (experiments) keeps the synchronous per-subscriber form and is the only
// consumer of targets; the WebSocket path ignores it (callers pass nil).
func (b *Broker) fanout(ctx context.Context, backendSubID string, targets map[string]string, latest time.Duration) {
	if b.push != nil {
		for sub, fsID := range targets {
			n := PushNotification{
				Type: "results", FrontendSub: fsID,
				BackendSub: backendSubID, LatestNS: int64(latest),
			}
			if b.push(sub, n) {
				b.stats.Delivered.Inc()
			}
		}
		return
	}
	b.sessions.broadcast(ctx, backendSubID, int64(latest))
}

// SetPushFunc overrides notification delivery; the experiment rigs use it
// to bypass WebSocket sessions and deliver synchronously. Pass nil to
// restore WebSocket delivery. Must be called before traffic flows.
func (b *Broker) SetPushFunc(fn func(subscriber string, n PushNotification) bool) {
	b.push = fn
}

// HandlePushedResult reacts to a PUSH-model webhook: the notification
// carried the result object itself, so the broker caches it directly —
// no fetch round trip. Gaps (results the broker never saw, e.g. shed push
// deliveries) are back-filled with one PULL of the missing range first,
// keeping the cache's timestamp order intact.
func (b *Broker) HandlePushedResult(backendSubID string, r bdms.ResultObject) error {
	return b.HandlePushedResultContext(context.Background(), backendSubID, r)
}

// HandlePushedResultContext is HandlePushedResult bound to ctx, which
// bounds the gap back-fill pull.
func (b *Broker) HandlePushedResultContext(ctx context.Context, backendSubID string, r bdms.ResultObject) (err error) {
	ctx, sp := b.traces.Start(ctx, "broker.push_ingest")
	sp.SetAttr("backend_sub", backendSubID)
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	now := b.clock()
	b.mu.Lock()
	bs, ok := b.backendByID[backendSubID]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("broker: pushed result for unknown subscription %q", backendSubID)
	}
	b.mu.Unlock()

	bs.pullMu.Lock()
	defer bs.pullMu.Unlock()
	b.mu.Lock()
	from := bs.bts
	b.mu.Unlock()
	if r.Timestamp <= from {
		return nil // duplicate push
	}

	if _, isNC := b.manager.Policy().(core.NC); !isNC {
		// Back-fill any gap below the pushed object, then cache it.
		if r.Timestamp > from {
			missed, err := b.backendResults(ctx, backendSubID, from, r.Timestamp, false)
			if err == nil {
				for _, m := range missed {
					obj := &core.Object{
						ID: m.ID, Timestamp: m.Timestamp, Size: m.Size,
						FetchLatency: b.fetchLatency(m.Size), Payload: m.Rows,
					}
					if err := b.manager.Put(backendSubID, obj, now); err == nil {
						b.stats.VolumeBytes.Add(float64(m.Size))
						b.stats.FetchBytes.Add(float64(m.Size))
					}
				}
			}
		}
		obj := &core.Object{
			ID: r.ID, Timestamp: r.Timestamp, Size: r.Size,
			FetchLatency: b.fetchLatency(r.Size), Payload: r.Rows,
		}
		if err := b.manager.Put(backendSubID, obj, now); err != nil {
			return fmt.Errorf("broker: cache pushed result: %w", err)
		}
		// Pushed bytes count toward the base volume but NOT FetchBytes:
		// the PUSH model's benefit is exactly that the broker does not
		// fetch them.
		b.stats.VolumeBytes.Add(float64(r.Size))
	}

	b.mu.Lock()
	if r.Timestamp > bs.bts {
		bs.bts = r.Timestamp
	}
	notifyList := b.notifyTargets(bs)
	b.mu.Unlock()

	b.fanout(ctx, backendSubID, notifyList, r.Timestamp)
	return nil
}

// HandlePushedResults ingests a coalesced batch of pushed results (the
// cluster-side notifier batches per callback within its flush window) in
// one call: a single gap back-fill below the batch, one cache Put per
// object and one notification fan-out for the whole batch.
func (b *Broker) HandlePushedResults(backendSubID string, rs []bdms.ResultObject) error {
	return b.HandlePushedResultsContext(context.Background(), backendSubID, rs)
}

// HandlePushedResultsContext is HandlePushedResults bound to ctx, which
// bounds the gap back-fill pull.
func (b *Broker) HandlePushedResultsContext(ctx context.Context, backendSubID string, rs []bdms.ResultObject) (err error) {
	if len(rs) == 0 {
		return nil
	}
	ctx, sp := b.traces.Start(ctx, "broker.push_ingest_batch")
	sp.SetAttr("backend_sub", backendSubID)
	sp.SetAttr("batch", strconv.Itoa(len(rs)))
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	now := b.clock()
	b.mu.Lock()
	bs, ok := b.backendByID[backendSubID]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("broker: pushed results for unknown subscription %q", backendSubID)
	}
	b.mu.Unlock()

	// Batches arrive oldest-first from the notifier, but sort defensively:
	// Puts must be timestamp-ordered.
	sorted := make([]bdms.ResultObject, len(rs))
	copy(sorted, rs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Timestamp < sorted[j].Timestamp })

	bs.pullMu.Lock()
	defer bs.pullMu.Unlock()
	b.mu.Lock()
	from := bs.bts
	b.mu.Unlock()
	latest := sorted[len(sorted)-1].Timestamp
	if latest <= from {
		return nil // whole batch already ingested
	}

	if _, isNC := b.manager.Policy().(core.NC); !isNC {
		// One back-fill below the oldest new object covers any gap for the
		// entire batch; intra-batch gaps cannot exist because the notifier
		// accumulates every pushed result in the window.
		first := sorted[0].Timestamp
		if first > from {
			missed, err := b.backendResults(ctx, backendSubID, from, first, false)
			if err == nil {
				for _, m := range missed {
					obj := &core.Object{
						ID: m.ID, Timestamp: m.Timestamp, Size: m.Size,
						FetchLatency: b.fetchLatency(m.Size), Payload: m.Rows,
					}
					if err := b.manager.Put(backendSubID, obj, now); err == nil {
						b.stats.VolumeBytes.Add(float64(m.Size))
						b.stats.FetchBytes.Add(float64(m.Size))
					}
				}
			}
		}
		for _, r := range sorted {
			if r.Timestamp <= from {
				continue // duplicate of an already-ingested object
			}
			obj := &core.Object{
				ID: r.ID, Timestamp: r.Timestamp, Size: r.Size,
				FetchLatency: b.fetchLatency(r.Size), Payload: r.Rows,
			}
			if err := b.manager.Put(backendSubID, obj, now); err != nil {
				return fmt.Errorf("broker: cache pushed result: %w", err)
			}
			b.stats.VolumeBytes.Add(float64(r.Size))
		}
	}

	b.mu.Lock()
	if latest > bs.bts {
		bs.bts = latest
	}
	notifyList := b.notifyTargets(bs)
	b.mu.Unlock()

	b.fanout(ctx, backendSubID, notifyList, latest)
	return nil
}

// fetchLatency estimates l_ij: the added latency of retrieving an object
// of the given size from the data cluster.
func (b *Broker) fetchLatency(size int64) time.Duration {
	transfer := time.Duration(float64(size) / b.bw * float64(time.Second))
	return b.rtt + transfer
}

// backendResults pulls results from the data cluster, upgrading to the
// context-aware call when the backend supports it. Pulls slower than the
// configured threshold are logged with the request's trace, so a slow
// subscriber retrieval can be followed into the cluster.
func (b *Broker) backendResults(ctx context.Context, subID string, from, to time.Duration, inclusiveTo bool) (results []bdms.ResultObject, err error) {
	start := time.Now()
	ctx, sp := b.traces.Start(ctx, "broker.cluster_fetch")
	sp.SetAttr("subscription", subID)
	defer func() {
		d := time.Since(start)
		sp.SetError(err)
		sp.End()
		b.stages.Observe(ctx, span.StageBrokerPull, span.OutcomeNone, d)
		if d >= b.slowFetch {
			b.log.WarnContext(ctx, "slow backend fetch",
				slog.String("subscription", subID),
				slog.Duration("duration", d),
				slog.Int("results", len(results)),
				slog.Bool("failed", err != nil),
			)
		}
	}()
	if bc, ok := b.backend.(ResultsBackendContext); ok {
		return bc.ResultsContext(ctx, subID, from, to, inclusiveTo)
	}
	return b.backend.Results(subID, from, to, inclusiveTo)
}

// fetchFromBackend is the core.Fetcher: re-fetch evicted/expired objects
// on a cache miss. In a fabric the lookup is two-tier — the HRW-owning
// sibling's cache first, the data cluster only when the peer cannot fully
// serve the range. It runs inside the manager's singleflight, so
// concurrent identical misses collapse to one peer lookup and at most one
// cluster fetch. Fetched objects are not re-cached (core enforces that by
// simply returning them).
func (b *Broker) fetchFromBackend(ctx context.Context, cacheID string, from, to time.Duration, inclusiveTo bool) ([]*core.Object, error) {
	if f := b.fabric; f != nil {
		if objs, ok := f.lookup(ctx, cacheID, from, to, inclusiveTo); ok {
			return objs, nil
		}
	}
	results, err := b.backendResults(ctx, cacheID, from, to, inclusiveTo)
	if err != nil {
		return nil, err
	}
	objs := make([]*core.Object, 0, len(results))
	for _, r := range results {
		objs = append(objs, &core.Object{
			ID:           r.ID,
			Timestamp:    r.Timestamp,
			Size:         r.Size,
			FetchLatency: b.fetchLatency(r.Size),
			Payload:      r.Rows,
		})
	}
	return objs, nil
}

// DriveTTL recomputes TTLs and expires due objects; call it from a ticker
// (live) or scheduled events (experiments). It is a no-op under non-TTL
// policies.
func (b *Broker) DriveTTL() {
	now := b.clock()
	b.manager.RecomputeTTLs(now)
	b.manager.ExpireDue(now)
}

// ExpireDue drops expired objects without recomputing TTLs.
func (b *Broker) ExpireDue() int { return b.manager.ExpireDue(b.clock()) }

// FrontendSubscriptions lists a subscriber's frontend subscription IDs,
// sorted.
func (b *Broker) FrontendSubscriptions(subscriber string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for id, fs := range b.frontend {
		if fs.subscriber == subscriber {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
