package broker

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gobad/internal/bdms"
	"gobad/internal/core"
	"gobad/internal/faults"
)

// warmEnv is the multi-broker warm-handoff fixture: one shared cluster,
// a predecessor broker A receiving live notifications, and per-key result
// history with known timestamps.
type warmEnv struct {
	clk     *testClock
	cluster *bdms.Cluster
	a       *Broker
	keys    []string
	// resumeAt is the per-key resume marker (the timestamp a failed-over
	// subscriber last acked); expect holds every result timestamp after it.
	resumeAt map[string]time.Duration
	expect   map[string][]time.Duration
}

// newWarmEnv publishes rounds results per key through broker A, acking
// after the first round so the resume gap is rounds-1 results wide.
func newWarmEnv(t *testing.T, nKeys, rounds int) *warmEnv {
	t.Helper()
	env := &warmEnv{
		clk:      &testClock{},
		resumeAt: make(map[string]time.Duration),
		expect:   make(map[string][]time.Duration),
	}
	env.cluster = bdms.NewCluster(
		bdms.WithClock(env.clk.Now),
		bdms.WithNotifier(bdms.NotifierFunc(func(subID, _ string, latest time.Duration) {
			if env.a != nil {
				_ = env.a.HandleNotification(subID, latest)
			}
		})),
	)
	if err := env.cluster.CreateDataset("EmergencyReports", bdms.Schema{}); err != nil {
		t.Fatal(err)
	}
	if err := env.cluster.DefineChannel(bdms.ChannelDef{
		Name:   "Alerts",
		Params: []string{"etype"},
		Body:   "select * from EmergencyReports r where r.etype = $etype",
	}); err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{
		ID: "broker-a", Backend: env.cluster, Policy: core.LSC{},
		CacheBudget: 64 << 20, Clock: env.clk.Now,
		TTL: core.TTLConfig{DefaultTTL: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.a = a
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("fire-%03d", i)
		env.keys = append(env.keys, key)
		if _, err := a.Subscribe("holder-"+key, "Alerts", []any{key}); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < rounds; r++ {
		// One clock tick per round: every key's stream gets one result at
		// this round's timestamp (streams are per-key, so within-round ties
		// never land in the same cache).
		env.clk.Advance(time.Second)
		ts := env.clk.Now()
		for _, key := range env.keys {
			if _, err := env.cluster.Ingest("EmergencyReports", map[string]any{
				"etype": key, "severity": float64(r),
			}); err != nil {
				t.Fatal(err)
			}
			if r == 0 {
				env.resumeAt[key] = ts
			} else {
				env.expect[key] = append(env.expect[key], ts)
			}
		}
	}
	return env
}

// resumeAll fails nSessions subscribers over to broker b (one session per
// stream, concurrently) and verifies every stream is complete and ordered:
// each subscriber sees exactly the results after its resume marker, oldest
// first. It returns the number of result-range fetches b made.
//
// Sessions map 1:1 onto keys: cached results are consumed once every
// subscriber pending at Put time has retrieved them, so a session resuming
// a shared stream behind its co-subscribers is not owed the consumed
// objects — per-session streams are the shape the resume protocol
// guarantees zero loss for.
func (env *warmEnv) resumeAll(t *testing.T, b *Broker, count *faults.CountingBackend, nSessions int) int64 {
	t.Helper()
	var wg sync.WaitGroup
	errCh := make(chan error, nSessions)
	for s := 0; s < nSessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			key := env.keys[s%len(env.keys)]
			sub := fmt.Sprintf("resumer-%04d", s)
			fs, err := b.SubscribeResume(context.Background(), sub, "Alerts", []any{key}, env.resumeAt[key])
			if err != nil {
				errCh <- fmt.Errorf("%s: %w", sub, err)
				return
			}
			ret, err := b.RetrieveContext(context.Background(), sub, fs)
			if err != nil {
				errCh <- fmt.Errorf("%s retrieve: %w", sub, err)
				return
			}
			want := env.expect[key]
			if len(ret.Items) != len(want) {
				errCh <- fmt.Errorf("%s: %d results, want %d (lost or duplicated)", sub, len(ret.Items), len(want))
				return
			}
			for i, item := range ret.Items {
				if time.Duration(item.TimestampNS) != want[i] {
					errCh <- fmt.Errorf("%s: result %d at %d, want %d (out of order)", sub, i, item.TimestampNS, want[i])
					return
				}
			}
			errCh <- nil
		}(s)
	}
	wg.Wait()
	close(errCh)
	failures := 0
	for err := range errCh {
		if err != nil {
			failures++
			if failures <= 5 {
				t.Error(err)
			}
		}
	}
	if failures > 5 {
		t.Errorf("... and %d more stream failures", failures-5)
	}
	return count.ResultFetches()
}

func newSuccessor(t *testing.T, env *warmEnv, id string) (*Broker, *faults.CountingBackend) {
	t.Helper()
	count := faults.Count(env.cluster)
	b, err := New(Config{
		ID: id, Backend: count, Policy: core.LSC{},
		CacheBudget: 64 << 20, Clock: env.clk.Now,
		TTL: core.TTLConfig{DefaultTTL: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b, count
}

// TestBrokerRestartWarmVsCold is the broker half of the restart chaos
// drill: sessions resuming onto a warm successor (cache snapshot handed
// off from the predecessor) must reconstruct every stream with zero loss
// while fetching at most 20% of what a cold successor fetches from the
// cluster. Both counts are logged.
func TestBrokerRestartWarmVsCold(t *testing.T) {
	sessions := 1000
	if testing.Short() {
		sessions = 120
	}
	keys := sessions
	env := newWarmEnv(t, keys, 4)
	snap := env.a.SnapshotCache()
	if len(snap.Entries) != keys {
		t.Fatalf("snapshot has %d entries, want %d", len(snap.Entries), keys)
	}

	warm, warmCount := newSuccessor(t, env, "broker-warm")
	resp := warm.InstallWarmup(context.Background(), snap)
	if resp.Stashed != keys {
		t.Fatalf("warmup intake: %+v, want %d stashed", resp, keys)
	}
	warmFetches := env.resumeAll(t, warm, warmCount, sessions)

	cold, coldCount := newSuccessor(t, env, "broker-cold")
	coldFetches := env.resumeAll(t, cold, coldCount, sessions)

	t.Logf("warm handoff: %d cluster range fetches for %d sessions; cold ablation: %d", warmFetches, sessions, coldFetches)
	if coldFetches == 0 {
		t.Fatal("cold ablation made no fetches; the comparison is vacuous")
	}
	if warmFetches*5 > coldFetches {
		t.Errorf("warm fetches %d exceed 20%% of cold %d", warmFetches, coldFetches)
	}
	if hits := warm.WarmupStats().Hits.Value(); hits != float64(keys) {
		t.Errorf("warmup hits = %v, want %v", hits, keys)
	}
	if misses := cold.WarmupStats().Misses.Value(); misses != float64(keys) {
		t.Errorf("cold broker misses = %v, want %v", misses, keys)
	}
}

// TestSubscribeSingleflight: K concurrent resumes of one key make exactly
// one cluster subscribe — the flight leader's — and no withdrawal churn.
func TestSubscribeSingleflight(t *testing.T) {
	env := newWarmEnv(t, 1, 3)
	b, count := newSuccessor(t, env, "broker-sf")
	const k = 32
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := b.SubscribeResume(context.Background(),
				fmt.Sprintf("s%d", i), "Alerts", []any{env.keys[0]}, env.resumeAt[env.keys[0]])
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := count.Subscribes(); got != 1 {
		t.Errorf("cluster subscribes = %d, want 1", got)
	}
	if got := count.Unsubscribes(); got != 0 {
		t.Errorf("cluster unsubscribes = %d, want 0 (no race withdrawals)", got)
	}
	if got := count.ResultFetches(); got > 1 {
		t.Errorf("result fetches = %d, want <= 1 for one key", got)
	}
	if got := b.NumBackendSubs(); got != 1 {
		t.Errorf("backend subs = %d, want 1", got)
	}
}

// TestInstallWarmupStaleRejected: a snapshot older than the max age is
// dropped wholesale — stale markers must not poison resume state.
func TestInstallWarmupStaleRejected(t *testing.T) {
	env := newWarmEnv(t, 2, 2)
	snap := env.a.SnapshotCache()
	snap.TakenUnixNS = time.Now().Add(-time.Hour).UnixNano()
	b, _ := newSuccessor(t, env, "broker-stale")
	resp := b.InstallWarmup(context.Background(), snap)
	if resp.Dropped != len(snap.Entries) || resp.Applied != 0 || resp.Stashed != 0 {
		t.Errorf("stale snapshot intake = %+v, want all %d dropped", resp, len(snap.Entries))
	}
	if b.WarmStashSize() != 0 {
		t.Errorf("stash size = %d, want 0", b.WarmStashSize())
	}
}

// TestInstallWarmupVersionRejected guards the wire format.
func TestInstallWarmupVersionRejected(t *testing.T) {
	env := newWarmEnv(t, 1, 2)
	snap := env.a.SnapshotCache()
	snap.Version = 99
	b, _ := newSuccessor(t, env, "broker-ver")
	if resp := b.InstallWarmup(context.Background(), snap); resp.Dropped != len(snap.Entries) {
		t.Errorf("unknown version intake = %+v, want all dropped", resp)
	}
}

// TestInstallWarmupAppliesToLiveSubscription: entries whose key already
// has a live backend subscription are applied immediately (not stashed)
// and advance its marker so no backfill is owed.
func TestInstallWarmupAppliesToLiveSubscription(t *testing.T) {
	env := newWarmEnv(t, 1, 3)
	key := env.keys[0]
	snap := env.a.SnapshotCache()

	b, count := newSuccessor(t, env, "broker-live")
	// Subscribe BEFORE the handoff arrives, resuming from the ack marker:
	// this backfills once (cold); the later install must then be a no-op
	// apply that leaves the marker at the cluster head.
	fs, err := b.SubscribeResume(context.Background(), "early", "Alerts", []any{key}, env.resumeAt[key])
	if err != nil {
		t.Fatal(err)
	}
	resp := b.InstallWarmup(context.Background(), snap)
	if resp.Applied != 1 || resp.Stashed != 0 {
		t.Errorf("intake = %+v, want 1 applied", resp)
	}
	ret, err := b.RetrieveContext(context.Background(), "early", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ret.Items) != len(env.expect[key]) {
		t.Errorf("stream has %d results, want %d", len(ret.Items), len(env.expect[key]))
	}
	if fetches := count.ResultFetches(); fetches > 1 {
		t.Errorf("result fetches = %d, want <= 1 (apply must not refetch)", fetches)
	}
}

// TestWarmStoreBudget: the stash refuses entries past its byte budget and
// counts the drop.
func TestWarmStoreBudget(t *testing.T) {
	w := newWarmStore(200)
	small := bdms.CacheWarmEntry{FabricKey: "k1", Channel: "Alerts"}
	if !w.put(small) {
		t.Fatal("small entry should fit")
	}
	big := bdms.CacheWarmEntry{FabricKey: "k2", Channel: "Alerts",
		Objects: []bdms.CacheWarmObject{{ID: "o1", Size: 10_000}}}
	if w.put(big) {
		t.Error("oversized entry should be refused")
	}
	if _, ok := w.take("k1"); !ok {
		t.Error("small entry lost")
	}
	if w.size() != 0 {
		t.Errorf("stash size = %d, want 0 after take", w.size())
	}
}

// TestSnapshotCacheBudgetBound: the drain snapshot stops at the byte
// budget, hottest keys first.
func TestSnapshotCacheBudgetBound(t *testing.T) {
	env := newWarmEnv(t, 6, 3)
	// Make key 0 hottest: extra attached subscribers.
	for i := 0; i < 3; i++ {
		if _, err := env.a.Subscribe(fmt.Sprintf("extra-%d", i), "Alerts", []any{env.keys[0]}); err != nil {
			t.Fatal(err)
		}
	}
	env.a.warm.maxBytes = 1 // starve the budget: only the first entry fits the check
	snap := env.a.SnapshotCache()
	if len(snap.Entries) != 0 {
		t.Fatalf("budget of 1 byte still shipped %d entries", len(snap.Entries))
	}
	env.a.warm.maxBytes = 1 << 20
	snap = env.a.SnapshotCache()
	if len(snap.Entries) != 6 {
		t.Fatalf("snapshot has %d entries, want 6", len(snap.Entries))
	}
	if snap.Entries[0].Params[0] != env.keys[0] {
		t.Errorf("hottest key %v not first, got %v", env.keys[0], snap.Entries[0].Params[0])
	}
}
