package broker

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"
)

// Resume tokens travel from broker to client (SubscribeResponse.LatestNS,
// push notification markers) and back on failover resubscribe. The wire
// historically carried a bare int64 nanosecond timestamp (resume_ns); the
// string form here adds a self-describing, checksummed encoding so a
// truncated or corrupted token is rejected at the edge instead of silently
// resuming from a garbage offset and replaying (or skipping) history.
//
//	v1:     rt1-<hex ns>-<8 hex fnv32a checksum>
//	legacy: <decimal int64 ns>  (accepted for compatibility)
//
// ParseResumeToken accepts both; FormatResumeToken always emits v1.

// resumeTokenPrefix tags the checksummed v1 token form.
const resumeTokenPrefix = "rt1-"

// FormatResumeToken renders an acknowledged-marker timestamp as a v1
// resume token. Negative timestamps clamp to zero (the epoch marker).
func FormatResumeToken(ts time.Duration) string {
	if ts < 0 {
		ts = 0
	}
	ns := uint64(ts)
	return fmt.Sprintf("%s%x-%08x", resumeTokenPrefix, ns, resumeChecksum(ns))
}

// ParseResumeToken decodes a resume token in either accepted form into
// the acknowledged-marker timestamp it carries. Errors mean the token is
// malformed or fails its checksum; callers should reject the resume
// request rather than guess.
func ParseResumeToken(s string) (time.Duration, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("resume token: empty")
	}
	if rest, ok := strings.CutPrefix(s, resumeTokenPrefix); ok {
		nsHex, sumHex, ok := strings.Cut(rest, "-")
		if !ok {
			return 0, fmt.Errorf("resume token: malformed v1 token (want %s<hex ns>-<hex sum>)", resumeTokenPrefix)
		}
		// 63 bits keeps the value representable as a non-negative int64
		// nanosecond timestamp.
		ns, err := strconv.ParseUint(nsHex, 16, 63)
		if err != nil {
			return 0, fmt.Errorf("resume token: bad timestamp %q: %v", nsHex, err)
		}
		if len(sumHex) != 8 {
			return 0, fmt.Errorf("resume token: checksum must be 8 hex digits, got %q", sumHex)
		}
		sum, err := strconv.ParseUint(sumHex, 16, 32)
		if err != nil {
			return 0, fmt.Errorf("resume token: bad checksum %q: %v", sumHex, err)
		}
		if uint32(sum) != resumeChecksum(ns) {
			return 0, fmt.Errorf("resume token: checksum mismatch (token corrupted or truncated)")
		}
		return time.Duration(ns), nil
	}
	ns, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("resume token: not a v1 token or legacy ns timestamp: %v", err)
	}
	if ns < 0 {
		return 0, fmt.Errorf("resume token: negative timestamp %d", ns)
	}
	return time.Duration(ns), nil
}

// resumeChecksum is FNV-1a over the big-endian timestamp — cheap
// corruption detection, not authentication.
func resumeChecksum(ns uint64) uint32 {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], ns)
	h := fnv.New32a()
	h.Write(b[:])
	return h.Sum32()
}
