package broker

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"gobad/internal/metrics"
	"gobad/internal/workload"
	"gobad/internal/wsock"
)

// This file is the session-hub soak harness behind `make soak` and
// cmd/badsoak: it stands up N simulated WebSocket sessions (in-process
// fake conns, no kernel sockets) with Zipf-skewed subscription interest,
// churns a fraction of them, then measures dispatch latency, allocations
// and memory per session. The committed BENCH_soak.json records its
// output and cmd/benchguard gates regressions against it, the same way
// BENCH_fanout.json gates the fan-out microbenchmark.

// SoakConfig parameterizes one soak run.
type SoakConfig struct {
	// Sessions is the number of simulated WebSocket sessions.
	Sessions int
	// BackendSubs is the size of the backend-subscription pool sessions
	// draw their interest from; <= 0 selects 1000.
	BackendSubs int
	// ZipfS is the Zipf skew of interest assignment and event traffic
	// (>1 is steeper; the BAD workload is head-heavy); <= 0 selects 0.9.
	ZipfS float64
	// Events is the number of dispatch events measured; <= 0 selects 2000.
	Events int
	// ChurnFraction is the fraction of sessions disconnected and
	// re-attached (with a fresh interest) before the dispatch phase,
	// modeling subscriber churn; negative selects 0.1.
	ChurnFraction float64
	// QueueCap bounds each session's push queue; <= 0 selects the
	// broker default.
	QueueCap int
	// Seed fixes the run's randomness (interest assignment, churn picks,
	// event traffic); 0 selects 1.
	Seed int64
	// Progress, when non-nil, receives coarse phase updates.
	Progress func(format string, args ...any)
}

// SoakResult is one soak run's measurements.
type SoakResult struct {
	Sessions    int   `json:"sessions"`
	BackendSubs int   `json:"backend_subs"`
	Events      int   `json:"events"`
	Churned     int   `json:"churned"`
	Goroutines  int   `json:"goroutines"`
	PushWriters int   `json:"push_writers"`
	RSSBytes    int64 `json:"rss_bytes"`
	// RSSPerSession is the resident-set growth per attached session
	// (process RSS after attach minus before, over sessions).
	RSSPerSession float64 `json:"rss_bytes_per_session"`
	// HeapPerSession is the post-GC heap-in-use growth per session.
	HeapPerSession float64 `json:"heap_bytes_per_session"`
	// DispatchP50/P99 are percentiles of one broadcast call's latency —
	// resolving the Zipf-drawn audience and enqueueing every marker, no
	// socket I/O.
	DispatchP50 time.Duration `json:"dispatch_p50_ns"`
	DispatchP99 time.Duration `json:"dispatch_p99_ns"`
	// AllocsPerOp is the process-wide allocation count over the dispatch
	// phase divided by events (includes the concurrent writer drain).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Frames/Bytes count what the writer pool actually put on the wire.
	Frames int64 `json:"frames"`
	Bytes  int64 `json:"bytes"`
	// DrainWait is how long after the last dispatch the writer pool
	// needed to empty every session queue.
	DrainWait time.Duration `json:"drain_wait_ns"`
}

// soakConn is a net.Conn standing in for a subscriber that always keeps
// up: writes are counted and discarded, reads block until close. No
// kernel socket and no reader goroutine, so a 100k-session soak measures
// the hub, not the test scaffolding.
type soakConn struct {
	closed chan struct{}
	bytes  *atomic.Int64
	frames *atomic.Int64
}

func newSoakConn(bytes, frames *atomic.Int64) *soakConn {
	return &soakConn{closed: make(chan struct{}), bytes: bytes, frames: frames}
}

func (c *soakConn) Read(b []byte) (int, error) {
	<-c.closed
	return 0, net.ErrClosed
}

func (c *soakConn) Write(b []byte) (int, error) {
	select {
	case <-c.closed:
		return 0, net.ErrClosed
	default:
	}
	c.bytes.Add(int64(len(b)))
	c.frames.Add(1)
	return len(b), nil
}

func (c *soakConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

func (c *soakConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *soakConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *soakConn) SetDeadline(t time.Time) error      { return nil }
func (c *soakConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *soakConn) SetWriteDeadline(t time.Time) error { return nil }

// readRSS returns the process resident set size in bytes (0 when
// /proc/self/status is unavailable, e.g. non-Linux).
func readRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	s := string(data)
	for start := 0; start < len(s); {
		end := start
		for end < len(s) && s[end] != '\n' {
			end++
		}
		var kb int64
		if n, _ := fmt.Sscanf(s[start:end], "VmRSS: %d kB", &kb); n == 1 {
			return kb << 10
		}
		start = end + 1
	}
	return 0
}

// RunSoak executes one soak run against a fresh session hub: attach,
// churn, dispatch, drain — measuring as it goes.
func RunSoak(cfg SoakConfig) (SoakResult, error) {
	if cfg.Sessions <= 0 {
		return SoakResult{}, fmt.Errorf("soak: Sessions must be positive, got %d", cfg.Sessions)
	}
	if cfg.BackendSubs <= 0 {
		cfg.BackendSubs = 1000
	}
	if cfg.ZipfS <= 0 {
		cfg.ZipfS = 0.9
	}
	if cfg.Events <= 0 {
		cfg.Events = 2000
	}
	if cfg.ChurnFraction < 0 {
		cfg.ChurnFraction = 0.1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}

	zipf, err := workload.NewZipf(cfg.BackendSubs, cfg.ZipfS)
	if err != nil {
		return SoakResult{}, fmt.Errorf("soak: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hub := newSessionHub(cfg.QueueCap, &metrics.Counter{}, nil)
	defer hub.stop()

	var bytes, frames atomic.Int64
	bsName := make([]string, cfg.BackendSubs)
	for i := range bsName {
		bsName[i] = fmt.Sprintf("bs-%04d", i)
	}

	res := SoakResult{
		Sessions:    cfg.Sessions,
		BackendSubs: cfg.BackendSubs,
		Events:      cfg.Events,
		PushWriters: hub.writers,
	}

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	rss0 := readRSS()

	progress("attaching %d sessions (%d backend subs, zipf s=%.2f)",
		cfg.Sessions, cfg.BackendSubs, cfg.ZipfS)
	subs := make([]string, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		subs[i] = fmt.Sprintf("sub-%06d", i)
		bs := bsName[zipf.Sample(rng)]
		hub.attach(subs[i], wsock.NewConn(newSoakConn(&bytes, &frames), false),
			map[string]string{bs: "fs-" + subs[i]})
	}

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	rss1 := readRSS()
	res.RSSBytes = rss1
	res.RSSPerSession = float64(rss1-rss0) / float64(cfg.Sessions)
	res.HeapPerSession = float64(int64(m1.HeapInuse)-int64(m0.HeapInuse)) / float64(cfg.Sessions)
	res.Goroutines = runtime.NumGoroutine()

	// Churn: disconnect and re-attach a fraction of sessions with fresh
	// interests, exercising detach/attach-replace and session recycling
	// under load before anything is measured hot.
	churn := int(float64(cfg.Sessions) * cfg.ChurnFraction)
	if churn > 0 {
		progress("churning %d sessions", churn)
		for i := 0; i < churn; i++ {
			sub := subs[rng.Intn(len(subs))]
			bs := bsName[zipf.Sample(rng)]
			conn := wsock.NewConn(newSoakConn(&bytes, &frames), false)
			hub.attach(sub, conn, map[string]string{bs: "fs-" + sub})
		}
		res.Churned = churn
	}

	progress("dispatching %d events", cfg.Events)
	ctx := context.Background()
	lat := make([]time.Duration, cfg.Events)
	var ma, mb runtime.MemStats
	runtime.ReadMemStats(&ma)
	for e := 0; e < cfg.Events; e++ {
		bs := bsName[zipf.Sample(rng)]
		start := time.Now()
		hub.broadcast(ctx, bs, int64(e+1))
		lat[e] = time.Since(start)
	}
	runtime.ReadMemStats(&mb)
	res.AllocsPerOp = float64(mb.Mallocs-ma.Mallocs) / float64(cfg.Events)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.DispatchP50 = lat[len(lat)/2]
	res.DispatchP99 = lat[len(lat)*99/100]

	// Let the writer pool flush every queue so Frames/Bytes reflect the
	// full run; bounded so a wedged pool fails loudly instead of hanging.
	drainStart := time.Now()
	deadline := drainStart.Add(2 * time.Minute)
	for hub.queueDepth() > 0 {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("soak: writer pool failed to drain (%d markers stuck)", hub.queueDepth())
		}
		time.Sleep(time.Millisecond)
	}
	res.DrainWait = time.Since(drainStart)
	res.Frames = frames.Load()
	res.Bytes = bytes.Load()
	progress("drained in %v: %d frames, %d bytes", res.DrainWait, res.Frames, res.Bytes)
	return res, nil
}
