package broker

import (
	"context"
	"encoding/json"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"gobad/internal/metrics"
	"gobad/internal/obs"
	"gobad/internal/obs/span"
	"gobad/internal/wsock"
)

// PushNotification is the JSON message pushed to subscribers over their
// WebSocket: "new results are available up to LatestNS — come and get
// them". The WebSocket wire form carries the (shared) backend subscription
// in "bs" and omits "fs", so one encoded payload serves every subscriber
// attached to that backend subscription; the client library maps "bs" back
// to its own frontend subscription and fills FrontendSub before handing the
// notification to the application.
type PushNotification struct {
	Type string `json:"type"`
	// FrontendSub identifies the receiving subscriber's frontend
	// subscription. Populated on the push-func (experiment) path and by
	// the client library; empty on the shared WebSocket wire form.
	FrontendSub string `json:"fs,omitempty"`
	// BackendSub identifies the deduplicated backend subscription the
	// results belong to.
	BackendSub string `json:"bs,omitempty"`
	LatestNS   int64  `json:"latest_ns"`
	// Traceparent carries the delivery's W3C trace context through the
	// push frame, so the subscriber's follow-up retrieval and ack join the
	// same end-to-end trace. Empty when the notification arrived untraced.
	Traceparent string `json:"tp,omitempty"`
}

// DefaultPushQueue is the default per-session outbound queue length
// (distinct frontend subscriptions with a pending marker).
const DefaultPushQueue = 128

// pushEvent is one "new results" marker, encoded once per backend
// subscription event and shared by every session it fans out to.
type pushEvent struct {
	latest int64
	pm     *wsock.PreparedMessage
	span   obs.SpanContext
	// at is the enqueue timestamp, stamped once per broadcast and only for
	// traced events; the writer derives the queue-wait stage from it.
	at time.Time
}

// pushStats tallies the asynchronous delivery pipeline's outcomes.
// Delivered lives in the broker's CacheStats (the paper's metric); these
// cover the pipeline mechanics.
type pushStats struct {
	// enqueued counts markers accepted into a session queue.
	enqueued atomic.Uint64
	// coalesced counts markers that replaced a queued marker for the same
	// frontend subscription (latest-wins: nothing is lost).
	coalesced atomic.Uint64
	// dropped counts markers evicted because a session queue overflowed
	// with distinct frontend subscriptions. A dropped marker is re-issued
	// by the next event on its subscription, and GetResults at any time
	// catches the subscriber up regardless.
	dropped atomic.Uint64
	// failures counts encode errors and failed socket writes.
	failures atomic.Uint64
}

// session is one subscriber's live WebSocket connection plus its bounded
// outbound queue, drained by a dedicated writer goroutine. Enqueueing never
// blocks and never does I/O, so a slow reader cannot stall the notification
// arrival path; because markers are idempotent and latest-wins, a new
// marker for an already-queued frontend subscription replaces the queued
// one instead of growing the queue.
type session struct {
	hub        *sessionHub
	subscriber string
	conn       *wsock.Conn

	mu     sync.Mutex
	queued map[string]*pushEvent // frontend sub -> pending marker
	order  []string              // FIFO of frontend subs with a pending marker
	// inflight counts markers popped by the writer but not yet written to
	// the socket; depth() includes them so a drain never closes the
	// connection (truncating the frame) under the writer's last write.
	inflight int
	closed   bool
	wake     chan struct{} // cap-1 doorbell for the writer goroutine
}

// enqueue adds (or coalesces) a marker for fs; it reports false when the
// session is already closed.
func (s *session) enqueue(fs string, ev *pushEvent) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if old, dup := s.queued[fs]; dup {
		// Latest-wins: the marker is cumulative, so replacing the queued
		// one loses nothing — the subscriber still sees the final marker.
		// A stale marker (out-of-order fan-out) is discarded, not merged,
		// and does not count as a coalesce.
		replaced := ev.latest >= old.latest
		if replaced {
			s.queued[fs] = ev
		}
		s.mu.Unlock()
		if replaced {
			s.hub.stats.coalesced.Add(1)
		}
		return true
	}
	dropped := false
	if len(s.order) >= s.hub.queueCap {
		// Overflow of distinct subscriptions: evict the oldest pending
		// marker to admit the newest. The evicted subscription is
		// re-notified by its next event and GetResults catches up anyway.
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.queued, oldest)
		dropped = true
	}
	s.queued[fs] = ev
	s.order = append(s.order, fs)
	// Ring the doorbell while still holding s.mu: close() holds the same
	// mutex when it closes s.wake, so the send can never race the close
	// and panic on a closed channel.
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.mu.Unlock()
	if dropped {
		s.hub.stats.dropped.Add(1)
	}
	s.hub.stats.enqueued.Add(1)
	return true
}

// pop removes the oldest pending marker, or returns ok=false when the
// queue is empty.
func (s *session) pop() (ev *pushEvent, closed, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) == 0 {
		return nil, s.closed, false
	}
	fs := s.order[0]
	s.order = s.order[1:]
	ev = s.queued[fs]
	delete(s.queued, fs)
	s.inflight++
	return ev, s.closed, true
}

// wrote marks the writer's popped marker as flushed to the socket.
func (s *session) wrote() {
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}

// depth returns the number of markers not yet on the wire: queued plus
// popped-but-unwritten. The drain path waits on this so a migrate close
// never lands under the writer's last write.
func (s *session) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order) + s.inflight
}

// queuedLen returns only the markers still awaiting writer pickup —
// the hub's QueueDepth stat, which excludes the in-flight write.
func (s *session) queuedLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// close marks the session dead, wakes the writer and closes the socket
// (which also unblocks a writer stuck mid-write on a stalled peer).
func (s *session) close() { s.closeWith(wsock.CloseNormal, "") }

// closeWith is close with an explicit close-frame status; the drain path
// sends (CloseServiceRestart, successor URL) so the client fails over to
// the named broker without consulting the BCS.
func (s *session) closeWith(code uint16, reason string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.queued = nil
	s.order = nil
	close(s.wake)
	s.mu.Unlock()
	_ = s.conn.CloseWith(code, reason)
}

// migrate flushes the session's pending push markers (bounded by ctx) and
// closes it with a migrate frame naming the successor broker. A session
// still backlogged at the deadline is migrated anyway: its markers are
// reconstructed from the subscriber's resume token on the successor.
func (s *session) migrate(ctx context.Context, successor string) {
	for s.depth() > 0 && ctx.Err() == nil {
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
	}
	s.closeWith(wsock.CloseServiceRestart, successor)
}

// writeLoop drains the queue onto the socket. Each marker is a shared
// pre-encoded frame, so a delivery is one buffer write and zero
// allocations. A write failure tears the session down — the subscriber
// reconnects and catches up via GetResults.
func (s *session) writeLoop() {
	for {
		ev, closed, ok := s.pop()
		if !ok {
			if closed {
				return
			}
			<-s.wake
			continue
		}
		err := s.deliver(ev)
		s.wrote()
		if err != nil {
			s.hub.stats.failures.Add(1)
			s.hub.log.WarnContext(obs.ContextWithSpan(context.Background(), ev.span),
				"push delivery failed; dropping session",
				slog.String("subscriber", s.subscriber),
				slog.Any("error", err))
			s.hub.drop(s)
			return
		}
		s.hub.delivered.Inc()
	}
}

// deliver writes one marker to the socket. Untraced markers (no span, the
// benchmark/common case) take the bare one-write fast path; traced markers
// additionally record a ws_write span plus the queue-wait and socket-write
// stage latencies.
func (s *session) deliver(ev *pushEvent) error {
	if !ev.span.Valid() {
		return s.conn.WritePreparedMessage(ev.pm)
	}
	ctx := obs.ContextWithSpan(context.Background(), ev.span)
	s.hub.stages.Observe(ctx, span.StageQueueWait, span.OutcomeNone, time.Since(ev.at))
	wctx, sp := s.hub.traces.Start(ctx, "session.ws_write")
	sp.SetAttr("subscriber", s.subscriber)
	start := time.Now()
	err := s.conn.WritePreparedMessage(ev.pm)
	sp.SetError(err)
	sp.End()
	s.hub.stages.Observe(wctx, span.StageWSWrite, span.OutcomeNone, time.Since(start))
	return err
}

// sessionHub tracks which subscribers are currently online (WebSocket
// connected). Subscriptions survive logout — that is the asynchrony
// caching enables — so the hub only affects push delivery, never
// subscription state.
type sessionHub struct {
	queueCap  int
	log       *slog.Logger
	delivered *metrics.Counter
	// traces/stages instrument the queue-wait and socket-write legs of
	// traced deliveries; both may be nil (untraced hubs, benchmarks).
	traces *span.Recorder
	stages *span.Stages

	mu       sync.Mutex
	sessions map[string]*session
	stats    pushStats
	// draining refuses new attaches once a drain has started; successor is
	// the broker URL late arrivals are pointed at.
	draining  bool
	successor string
}

func newSessionHub(queueCap int, delivered *metrics.Counter, log *slog.Logger) *sessionHub {
	if queueCap <= 0 {
		queueCap = DefaultPushQueue
	}
	if log == nil {
		log = obs.NopLogger()
	}
	return &sessionHub{
		queueCap:  queueCap,
		log:       log,
		delivered: delivered,
		sessions:  make(map[string]*session),
	}
}

// attach registers a subscriber's connection, closing any previous one, and
// starts its writer goroutine. During a drain the attach is refused: the
// connection is closed immediately with a migrate frame naming the
// successor, and attach reports false.
func (h *sessionHub) attach(subscriber string, conn *wsock.Conn) bool {
	s := &session{
		hub:        h,
		subscriber: subscriber,
		conn:       conn,
		queued:     make(map[string]*pushEvent),
		wake:       make(chan struct{}, 1),
	}
	h.mu.Lock()
	if h.draining {
		successor := h.successor
		h.mu.Unlock()
		_ = conn.CloseWith(wsock.CloseServiceRestart, successor)
		return false
	}
	old := h.sessions[subscriber]
	h.sessions[subscriber] = s
	h.mu.Unlock()
	if old != nil {
		old.close()
	}
	go s.writeLoop()
	return true
}

// detach removes the subscriber's session if it still owns the given
// connection.
func (h *sessionHub) detach(subscriber string, conn *wsock.Conn) {
	h.mu.Lock()
	s := h.sessions[subscriber]
	if s != nil && s.conn == conn {
		delete(h.sessions, subscriber)
	} else {
		s = nil
	}
	h.mu.Unlock()
	if s != nil {
		s.close()
	}
}

// drop removes a session after a write failure.
func (h *sessionHub) drop(s *session) {
	h.mu.Lock()
	if h.sessions[s.subscriber] == s {
		delete(h.sessions, s.subscriber)
	}
	h.mu.Unlock()
	s.close()
}

// online reports whether the subscriber has a live connection.
func (h *sessionHub) online(subscriber string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sessions[subscriber] != nil
}

// count returns the number of online subscribers.
func (h *sessionHub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.sessions)
}

// drain migrates every live session: further attaches are refused, each
// session's pending markers are flushed (bounded by ctx) and each socket is
// closed with a migrate frame naming the successor broker. It returns how
// many sessions were migrated.
func (h *sessionHub) drain(ctx context.Context, successor string) int {
	h.mu.Lock()
	h.draining = true
	h.successor = successor
	sessions := make([]*session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.sessions = make(map[string]*session)
	h.mu.Unlock()

	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *session) {
			defer wg.Done()
			s.migrate(ctx, successor)
		}(s)
	}
	wg.Wait()
	return len(sessions)
}

// rebalance migrates the subset of live sessions decide selects: each
// selected session's pending markers are flushed (bounded by ctx) and its
// socket is closed with a migrate frame naming that session's successor.
// Unlike drain, the hub keeps accepting attaches — the broker remains a
// live fabric member, it just stopped owning the moved subscribers.
func (h *sessionHub) rebalance(ctx context.Context, decide func(subscriber string) (successor string, move bool)) int {
	type moved struct {
		s         *session
		successor string
	}
	h.mu.Lock()
	var moves []moved
	for sub, s := range h.sessions {
		if succ, ok := decide(sub); ok {
			moves = append(moves, moved{s, succ})
			delete(h.sessions, sub)
		}
	}
	h.mu.Unlock()

	var wg sync.WaitGroup
	for _, mv := range moves {
		wg.Add(1)
		go func(mv moved) {
			defer wg.Done()
			mv.s.migrate(ctx, mv.successor)
		}(mv)
	}
	wg.Wait()
	return len(moves)
}

// queueDepth returns the total number of pending markers across sessions
// (markers the writer has popped but not yet written are excluded).
func (h *sessionHub) queueDepth() int {
	h.mu.Lock()
	sessions := make([]*session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.Unlock()
	total := 0
	for _, s := range sessions {
		total += s.queuedLen()
	}
	return total
}

// PushStats is a point-in-time snapshot of the asynchronous push
// pipeline's counters.
type PushStats struct {
	// Enqueued counts markers accepted into session queues.
	Enqueued uint64
	// Coalesced counts markers merged latest-wins into a queued marker.
	Coalesced uint64
	// Dropped counts oldest-pending markers evicted on queue overflow.
	Dropped uint64
	// Failures counts encode errors and failed socket writes.
	Failures uint64
	// QueueDepth is the current total of pending markers across sessions.
	QueueDepth int
}

func (h *sessionHub) snapshot() PushStats {
	return PushStats{
		Enqueued:   h.stats.enqueued.Load(),
		Coalesced:  h.stats.coalesced.Load(),
		Dropped:    h.stats.dropped.Load(),
		Failures:   h.stats.failures.Load(),
		QueueDepth: h.queueDepth(),
	}
}

// broadcast fans one backend-subscription event out to the online sessions
// among targets (subscriber -> frontend sub). The payload is marshaled once
// and pre-framed once; per session the cost is a non-blocking enqueue, so
// the arrival path never waits on a subscriber's socket. It returns how
// many sessions accepted the marker.
func (h *sessionHub) broadcast(ctx context.Context, backendSub string, targets map[string]string, latest int64) int {
	type target struct {
		s  *session
		fs string
	}
	h.mu.Lock()
	online := make([]target, 0, len(targets))
	for sub, fs := range targets {
		if s := h.sessions[sub]; s != nil {
			online = append(online, target{s, fs})
		}
	}
	h.mu.Unlock()
	if len(online) == 0 {
		return 0
	}
	note := PushNotification{Type: "results", BackendSub: backendSub, LatestNS: latest}
	sc, _ := obs.SpanFromContext(ctx)
	if sc.Valid() {
		note.Traceparent = sc.Traceparent()
	}
	payload, err := json.Marshal(note)
	if err != nil {
		h.stats.failures.Add(1)
		h.log.WarnContext(ctx, "encoding push notification failed",
			slog.String("backend_sub", backendSub), slog.Any("error", err))
		return 0
	}
	pm, err := wsock.NewPreparedMessage(wsock.OpText, payload)
	if err != nil {
		h.stats.failures.Add(1)
		h.log.WarnContext(ctx, "preparing push frame failed",
			slog.String("backend_sub", backendSub), slog.Any("error", err))
		return 0
	}
	ev := &pushEvent{latest: latest, pm: pm, span: sc}
	if sc.Valid() {
		ev.at = time.Now()
	}
	accepted := 0
	for _, t := range online {
		if t.s.enqueue(t.fs, ev) {
			accepted++
		}
	}
	return accepted
}
