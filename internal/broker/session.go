package broker

import (
	"encoding/json"
	"sync"

	"gobad/internal/wsock"
)

// PushNotification is the JSON message pushed to subscribers over their
// WebSocket: "new results are available for your frontend subscription up
// to LatestNS — come and get them".
type PushNotification struct {
	Type        string `json:"type"`
	FrontendSub string `json:"fs"`
	LatestNS    int64  `json:"latest_ns"`
}

// sessionHub tracks which subscribers are currently online (WebSocket
// connected). Subscriptions survive logout — that is the asynchrony
// caching enables — so the hub only affects push delivery, never
// subscription state.
type sessionHub struct {
	mu    sync.Mutex
	conns map[string]*wsock.Conn
}

func newSessionHub() *sessionHub {
	return &sessionHub{conns: make(map[string]*wsock.Conn)}
}

// attach registers a subscriber's connection, closing any previous one.
func (h *sessionHub) attach(subscriber string, conn *wsock.Conn) {
	h.mu.Lock()
	old := h.conns[subscriber]
	h.conns[subscriber] = conn
	h.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

// detach removes the subscriber's connection if it is still the given one.
func (h *sessionHub) detach(subscriber string, conn *wsock.Conn) {
	h.mu.Lock()
	if h.conns[subscriber] == conn {
		delete(h.conns, subscriber)
	}
	h.mu.Unlock()
}

// online reports whether the subscriber has a live connection.
func (h *sessionHub) online(subscriber string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.conns[subscriber] != nil
}

// count returns the number of online subscribers.
func (h *sessionHub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conns)
}

// notify pushes a notification to the subscriber; it reports whether a
// delivery was attempted (the subscriber was online). Write failures tear
// the session down — the subscriber will reconnect and catch up.
func (h *sessionHub) notify(subscriber string, n PushNotification) bool {
	h.mu.Lock()
	conn := h.conns[subscriber]
	h.mu.Unlock()
	if conn == nil {
		return false
	}
	payload, err := json.Marshal(n)
	if err != nil {
		return false
	}
	if err := conn.WriteMessage(wsock.OpText, payload); err != nil {
		h.detach(subscriber, conn)
		_ = conn.Close()
		return false
	}
	return true
}
