package broker

import (
	"context"
	"encoding/json"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gobad/internal/metrics"
	"gobad/internal/obs"
	"gobad/internal/obs/span"
	"gobad/internal/wsock"
)

// PushNotification is the JSON message pushed to subscribers over their
// WebSocket: "new results are available up to LatestNS — come and get
// them". The WebSocket wire form carries the (shared) backend subscription
// in "bs" and omits "fs", so one encoded payload serves every subscriber
// attached to that backend subscription; the client library maps "bs" back
// to its own frontend subscription and fills FrontendSub before handing the
// notification to the application.
type PushNotification struct {
	Type string `json:"type"`
	// FrontendSub identifies the receiving subscriber's frontend
	// subscription. Populated on the push-func (experiment) path and by
	// the client library; empty on the shared WebSocket wire form.
	FrontendSub string `json:"fs,omitempty"`
	// BackendSub identifies the deduplicated backend subscription the
	// results belong to.
	BackendSub string `json:"bs,omitempty"`
	LatestNS   int64  `json:"latest_ns"`
	// Traceparent carries the delivery's W3C trace context through the
	// push frame, so the subscriber's follow-up retrieval and ack join the
	// same end-to-end trace. Empty when the notification arrived untraced.
	Traceparent string `json:"tp,omitempty"`
}

// DefaultPushQueue is the default per-session outbound queue length
// (distinct frontend subscriptions with a pending marker).
const DefaultPushQueue = 128

// DefaultPushWriteTimeout bounds one pooled writer's socket write. With a
// shared writer pool a stalled subscriber would otherwise pin a writer
// forever; past the deadline the write fails and the session is dropped
// (the subscriber reconnects and catches up via GetResults).
const DefaultPushWriteTimeout = 10 * time.Second

// defaultPushWriters sizes the shared writer pool: enough to keep sockets
// busy on every core with headroom for a writer parked on a slow peer,
// bounded so a million sessions never means a million goroutines.
func defaultPushWriters() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	if n > 32 {
		n = 32
	}
	return n
}

// pushEvent is one "new results" marker, encoded once per backend
// subscription event and shared by every session it fans out to. Events
// are pooled: refs counts the queue slots (and in-flight writes) still
// holding the event, and the last release recycles it — the prepared
// frame's buffers with it — so a steady broadcast stream allocates
// nothing per event after warm-up.
type pushEvent struct {
	latest int64
	pm     wsock.PreparedMessage
	span   obs.SpanContext
	// at is the enqueue timestamp, stamped once per broadcast and only for
	// traced events; the writer derives the queue-wait stage from it.
	at   time.Time
	refs atomic.Int32
}

var eventPool = sync.Pool{New: func() any { return new(pushEvent) }}

// release drops one reference; the last one returns the event (buffers
// intact) to the pool.
func (ev *pushEvent) release() {
	if ev.refs.Add(-1) == 0 {
		ev.span = obs.SpanContext{}
		eventPool.Put(ev)
	}
}

// appendPushJSON hand-encodes the shared wire form of a push notification
// ({"type":"results","bs":...,"latest_ns":...[,"tp":...]}) into dst. The
// two strings are broker-minted identifiers and a hex traceparent, so the
// fast path escapes nothing; a string that does need escaping falls back
// to encoding/json for the whole payload.
func appendPushJSON(dst []byte, backendSub string, latest int64, tp string) ([]byte, error) {
	if !jsonPlain(backendSub) || !jsonPlain(tp) {
		note := PushNotification{Type: "results", BackendSub: backendSub, LatestNS: latest, Traceparent: tp}
		enc, err := json.Marshal(note)
		if err != nil {
			return dst, err
		}
		return append(dst, enc...), nil
	}
	dst = append(dst, `{"type":"results","bs":"`...)
	dst = append(dst, backendSub...)
	dst = append(dst, `","latest_ns":`...)
	dst = appendInt(dst, latest)
	if tp != "" {
		dst = append(dst, `,"tp":"`...)
		dst = append(dst, tp...)
		dst = append(dst, '"')
	}
	dst = append(dst, '}')
	return dst, nil
}

// jsonPlain reports whether s can be embedded in a JSON string verbatim.
func jsonPlain(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			return false
		}
	}
	return true
}

// appendInt appends the decimal form of v (no allocation).
func appendInt(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}

// pushStats tallies the asynchronous delivery pipeline's outcomes.
// Delivered lives in the broker's CacheStats (the paper's metric); these
// cover the pipeline mechanics.
type pushStats struct {
	// enqueued counts markers accepted into a session queue.
	enqueued atomic.Uint64
	// coalesced counts markers that replaced a queued marker for the same
	// frontend subscription (latest-wins: nothing is lost).
	coalesced atomic.Uint64
	// dropped counts markers evicted because a session queue overflowed
	// with distinct frontend subscriptions. A dropped marker is re-issued
	// by the next event on its subscription, and GetResults at any time
	// catches the subscriber up regardless.
	dropped atomic.Uint64
	// failures counts encode errors and failed socket writes.
	failures atomic.Uint64
}

// pendingMarker is one queued (frontend sub, event) pair in a session's
// ring buffer.
type pendingMarker struct {
	fs string
	ev *pushEvent
}

// session is one subscriber's live WebSocket connection plus its bounded
// outbound marker queue. There is no per-session goroutine: when the queue
// transitions empty -> non-empty the session is scheduled onto the hub's
// shared run queue, and one of the fixed pool of writers drains it.
// Enqueueing never blocks and never does I/O, so a slow reader cannot
// stall the notification arrival path; because markers are idempotent and
// latest-wins, a new marker for an already-queued frontend subscription
// replaces the queued one instead of growing the queue.
//
// Sessions are recycled through a pool. refs counts the references that
// may outlive a hub lock: the hub's session-map entry (transferred to the
// drain/rebalance path while it migrates) and, while scheduled, the run
// queue's. The last release resets the struct — ring buffer and interest
// map retained — and returns it to the pool. Lock order is hub.mu before
// session.mu before hub.readyMu; none is ever taken in the other
// direction.
type session struct {
	hub        *sessionHub
	subscriber string
	conn       *wsock.Conn

	// interests mirrors the hub's interest index entries that point at
	// this session (backend sub -> frontend sub). Guarded by hub.mu, so
	// detach can unlink the session from every index entry it appears in
	// without scanning the index.
	interests map[string]string

	// refs counts pool-visible references (hub map + run queue); the last
	// release recycles the session.
	refs atomic.Int32

	mu   sync.Mutex
	ring []pendingMarker // circular buffer; grown lazily up to hub.queueCap
	head int
	n    int
	// inflight counts markers popped by a writer but not yet written to
	// the socket; depth() includes them so a drain never closes the
	// connection (truncating the frame) under the writer's last write.
	inflight  int
	closed    bool
	scheduled bool

	// nextReady links the hub's run queue (guarded by hub.readyMu).
	nextReady *session
}

var sessionPool = sync.Pool{New: func() any { return new(session) }}

// newSession draws a session from the pool, ready for attach. The ring
// buffer and interest map survive recycling, so steady-state connection
// churn allocates (almost) nothing per session.
func newSession(h *sessionHub, subscriber string, conn *wsock.Conn) *session {
	s := sessionPool.Get().(*session)
	s.hub = h
	s.subscriber = subscriber
	s.conn = conn
	if s.interests == nil {
		s.interests = make(map[string]string, 4)
	}
	s.head, s.n, s.inflight = 0, 0, 0
	s.closed, s.scheduled = false, false
	s.nextReady = nil
	s.refs.Store(1) // the hub map's reference
	return s
}

// retain adds a pool-visible reference.
func (s *session) retain() { s.refs.Add(1) }

// release drops one; the last reference resets and recycles the session.
func (s *session) release() {
	if s.refs.Add(-1) > 0 {
		return
	}
	// No hub map entry, no run-queue entry, and (closed) no queued or
	// in-flight markers remain; nothing can reach the struct anymore.
	s.hub = nil
	s.conn = nil
	s.subscriber = ""
	clear(s.interests)
	for i := range s.ring {
		s.ring[i] = pendingMarker{}
	}
	sessionPool.Put(s)
}

// enqueue adds (or coalesces) a marker for fs; it reports false when the
// session is already closed. The caller holds one event reference per
// enqueue attempt; every path here either stores it or releases it.
func (s *session) enqueue(fs string, ev *pushEvent) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ev.release()
		return false
	}
	// Latest-wins coalescing: scan the ring for a queued marker of the
	// same frontend subscription. Queues are short (steady state 0-1),
	// so the scan beats a map's allocation churn.
	for i := 0; i < s.n; i++ {
		slot := &s.ring[(s.head+i)%len(s.ring)]
		if slot.fs != fs {
			continue
		}
		// The marker is cumulative, so replacing the queued one loses
		// nothing — the subscriber still sees the final marker. A stale
		// marker (out-of-order fan-out) is discarded, not merged, and
		// does not count as a coalesce.
		replaced := ev.latest >= slot.ev.latest
		if replaced {
			old := slot.ev
			slot.ev = ev
			old.release()
		} else {
			ev.release()
		}
		s.mu.Unlock()
		if replaced {
			s.hub.stats.coalesced.Add(1)
		}
		return true
	}
	dropped := false
	if s.n >= s.hub.queueCap {
		// Overflow of distinct subscriptions: evict the oldest pending
		// marker to admit the newest. The evicted subscription is
		// re-notified by its next event and GetResults catches up anyway.
		old := s.ring[s.head]
		s.ring[s.head] = pendingMarker{}
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		old.ev.release()
		dropped = true
	}
	if s.n == len(s.ring) {
		s.grow()
	}
	s.ring[(s.head+s.n)%len(s.ring)] = pendingMarker{fs: fs, ev: ev}
	s.n++
	schedule := !s.scheduled
	if schedule {
		s.scheduled = true
		s.retain() // the run queue's reference
	}
	s.mu.Unlock()
	if schedule {
		s.hub.pushReady(s)
	}
	if dropped {
		s.hub.stats.dropped.Add(1)
	}
	s.hub.stats.enqueued.Add(1)
	return true
}

// grow doubles the ring (4 -> 8 -> ... -> queueCap), preserving order.
// Called with s.mu held and the ring full.
func (s *session) grow() {
	newCap := 2 * len(s.ring)
	if newCap == 0 {
		newCap = 4
	}
	if newCap > s.hub.queueCap {
		newCap = s.hub.queueCap
	}
	next := make([]pendingMarker, newCap)
	for i := 0; i < s.n; i++ {
		next[i] = s.ring[(s.head+i)%len(s.ring)]
	}
	s.ring = next
	s.head = 0
}

// pop removes the oldest pending marker, or returns ok=false when the
// queue is empty or the session closed (a closed session's ring is
// already cleared).
func (s *session) pop() (fs string, ev *pushEvent, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return "", nil, false
	}
	slot := s.ring[s.head]
	s.ring[s.head] = pendingMarker{}
	s.head = (s.head + 1) % len(s.ring)
	s.n--
	s.inflight++
	return slot.fs, slot.ev, true
}

// wrote marks the writer's popped marker as flushed to the socket.
func (s *session) wrote() {
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}

// depth returns the number of markers not yet on the wire: queued plus
// popped-but-unwritten. The drain path waits on this so a migrate close
// never lands under the writer's last write.
func (s *session) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n + s.inflight
}

// queuedLen returns only the markers still awaiting writer pickup —
// the hub's QueueDepth stat, which excludes the in-flight write.
func (s *session) queuedLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// close marks the session dead and closes the socket (which also unblocks
// a writer stuck mid-write on a stalled peer).
func (s *session) close() { s.closeWith(wsock.CloseNormal, "") }

// closeWith is close with an explicit close-frame status; the drain path
// sends (CloseServiceRestart, successor URL) so the client fails over to
// the named broker without consulting the BCS.
func (s *session) closeWith(code uint16, reason string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for i := 0; i < s.n; i++ {
		idx := (s.head + i) % len(s.ring)
		s.ring[idx].ev.release()
		s.ring[idx] = pendingMarker{}
	}
	s.head, s.n = 0, 0
	conn := s.conn
	s.mu.Unlock()
	_ = conn.CloseWith(code, reason)
}

// migrate flushes the session's pending push markers (bounded by ctx) and
// closes it with a migrate frame naming the successor broker. A session
// still backlogged at the deadline is migrated anyway: its markers are
// reconstructed from the subscriber's resume token on the successor.
func (s *session) migrate(ctx context.Context, successor string) {
	for s.depth() > 0 && ctx.Err() == nil {
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
	}
	s.closeWith(wsock.CloseServiceRestart, successor)
}

// sessionHub tracks which subscribers are currently online (WebSocket
// connected) and which backend subscription each online session is
// interested in. Subscriptions survive logout — that is the asynchrony
// caching enables — so the hub only affects push delivery, never
// subscription state.
//
// The hot path is interest-keyed: a notification for a backend
// subscription resolves its audience with one map lookup
// (interests[backendSub]) instead of iterating sessions, and delivery is
// drained by a fixed pool of writer goroutines instead of one goroutine
// per session — the difference between 10k connections and a million.
type sessionHub struct {
	queueCap     int
	writers      int
	writeTimeout time.Duration
	log          *slog.Logger
	delivered    *metrics.Counter
	// traces/stages instrument the queue-wait and socket-write legs of
	// traced deliveries; both may be nil (untraced hubs, benchmarks).
	traces *span.Recorder
	stages *span.Stages

	// mu guards sessions, interests and every session's interests mirror.
	// Broadcasts hold the read lock while they enqueue, which is what
	// makes session recycling safe: a session cannot leave the maps (and
	// so cannot be released) while any broadcast still sees it.
	mu       sync.RWMutex
	sessions map[string]*session
	// interests is the fan-out index: backend subscription -> online
	// session -> frontend subscription. Maintained by register/deregister
	// (subscribe/unsubscribe) and attach/detach (connect/disconnect).
	interests map[string]map[*session]string
	stats     pushStats
	// draining refuses new attaches once a drain has started; successor is
	// the broker URL late arrivals are pointed at.
	draining  bool
	successor string

	// run queue of sessions with pending markers, drained by the writer
	// pool. Intrusive (session.nextReady), so scheduling allocates
	// nothing.
	readyMu   sync.Mutex
	readyCond *sync.Cond
	readyHead *session
	readyTail *session
	stopped   bool

	startOnce sync.Once
}

func newSessionHub(queueCap int, delivered *metrics.Counter, log *slog.Logger) *sessionHub {
	if queueCap <= 0 {
		queueCap = DefaultPushQueue
	}
	if log == nil {
		log = obs.NopLogger()
	}
	h := &sessionHub{
		queueCap:     queueCap,
		writers:      defaultPushWriters(),
		writeTimeout: DefaultPushWriteTimeout,
		log:          log,
		delivered:    delivered,
		sessions:     make(map[string]*session),
		interests:    make(map[string]map[*session]string),
	}
	h.readyCond = sync.NewCond(&h.readyMu)
	return h
}

// start launches the writer pool (idempotent; called on the first attach
// so hubs that never see a WebSocket cost nothing).
func (h *sessionHub) start() {
	h.startOnce.Do(func() {
		for i := 0; i < h.writers; i++ {
			go h.writeLoop()
		}
	})
}

// stop terminates the writer pool once every queued marker has been
// picked up. Used by graceful drain (after the last migrate) and tests.
func (h *sessionHub) stop() {
	h.readyMu.Lock()
	h.stopped = true
	h.readyCond.Broadcast()
	h.readyMu.Unlock()
}

// pushReady appends a scheduled session to the run queue.
func (h *sessionHub) pushReady(s *session) {
	h.readyMu.Lock()
	if h.readyTail == nil {
		h.readyHead, h.readyTail = s, s
	} else {
		h.readyTail.nextReady = s
		h.readyTail = s
	}
	h.readyMu.Unlock()
	h.readyCond.Signal()
}

// popReady blocks until a session is runnable (nil once the hub stops and
// the queue is empty).
func (h *sessionHub) popReady() *session {
	h.readyMu.Lock()
	defer h.readyMu.Unlock()
	for h.readyHead == nil {
		if h.stopped {
			return nil
		}
		h.readyCond.Wait()
	}
	s := h.readyHead
	h.readyHead = s.nextReady
	if h.readyHead == nil {
		h.readyTail = nil
	}
	s.nextReady = nil
	return s
}

// writeBatch bounds how many markers one writer drains from a single
// session before requeueing it, so a busy session cannot monopolize a
// pool writer while others wait.
const writeBatch = 16

// writeLoop is one pool writer: pop a runnable session, drain up to a
// batch of its markers onto the socket, requeue it if more arrived. Each
// marker is a shared pre-encoded frame, so a delivery is one buffer write
// and zero allocations. A write failure tears the session down — the
// subscriber reconnects and catches up via GetResults.
func (h *sessionHub) writeLoop() {
	for {
		s := h.popReady()
		if s == nil {
			return
		}
		h.drainSession(s)
	}
}

// drainSession delivers up to writeBatch markers for one scheduled
// session. It owns the session's run-queue reference and either passes it
// back to the queue (more pending) or releases it (idle or closed).
func (h *sessionHub) drainSession(s *session) {
	for i := 0; i < writeBatch; i++ {
		_, ev, ok := s.pop()
		if !ok {
			break
		}
		err := s.deliver(ev)
		s.wrote()
		// Copy the span before releasing: the last release recycles the
		// event (zeroing ev.span), and another session sharing the event
		// may be that last holder.
		evSpan := ev.span
		ev.release()
		if err != nil {
			h.stats.failures.Add(1)
			h.log.WarnContext(obs.ContextWithSpan(context.Background(), evSpan),
				"push delivery failed; dropping session",
				slog.String("subscriber", s.subscriber),
				slog.Any("error", err))
			h.drop(s)
			break
		}
		h.delivered.Inc()
	}
	s.mu.Lock()
	if s.n > 0 && !s.closed {
		s.mu.Unlock()
		h.pushReady(s) // keep the run-queue reference
		return
	}
	s.scheduled = false
	s.mu.Unlock()
	s.release()
}

// deliver writes one marker to the socket. Untraced markers (no span, the
// benchmark/common case) take the bare one-write fast path; traced markers
// additionally record a ws_write span plus the queue-wait and socket-write
// stage latencies.
func (s *session) deliver(ev *pushEvent) error {
	if d := s.hub.writeTimeout; d > 0 {
		_ = s.conn.SetWriteDeadline(time.Now().Add(d))
	}
	if !ev.span.Valid() {
		return s.conn.WritePreparedMessage(&ev.pm)
	}
	ctx := obs.ContextWithSpan(context.Background(), ev.span)
	s.hub.stages.Observe(ctx, span.StageQueueWait, span.OutcomeNone, time.Since(ev.at))
	wctx, sp := s.hub.traces.Start(ctx, "session.ws_write")
	sp.SetAttr("subscriber", s.subscriber)
	start := time.Now()
	err := s.conn.WritePreparedMessage(&ev.pm)
	sp.SetError(err)
	sp.End()
	s.hub.stages.Observe(wctx, span.StageWSWrite, span.OutcomeNone, time.Since(start))
	return err
}

// attach registers a subscriber's connection, closing any previous one,
// and indexes it under the subscriber's interests (backend sub ->
// frontend sub, the broker's view of its subscriptions at attach time;
// register keeps the index current for subscriptions made while online).
// During a drain the attach is refused: the connection is closed
// immediately with a migrate frame naming the successor, and attach
// reports false.
func (h *sessionHub) attach(subscriber string, conn *wsock.Conn, interests map[string]string) bool {
	h.start()
	s := newSession(h, subscriber, conn)
	h.mu.Lock()
	if h.draining {
		successor := h.successor
		h.mu.Unlock()
		s.release()
		_ = conn.CloseWith(wsock.CloseServiceRestart, successor)
		return false
	}
	old := h.sessions[subscriber]
	if old != nil {
		h.unlink(old)
	}
	h.sessions[subscriber] = s
	for bs, fs := range interests {
		s.interests[bs] = fs
		m := h.interests[bs]
		if m == nil {
			m = make(map[*session]string, 1)
			h.interests[bs] = m
		}
		m[s] = fs
	}
	h.mu.Unlock()
	if old != nil {
		old.close()
		old.release()
	}
	return true
}

// unlink removes a session from the interest index (h.mu held, write).
func (h *sessionHub) unlink(s *session) {
	for bs := range s.interests {
		if m := h.interests[bs]; m != nil {
			delete(m, s)
			if len(m) == 0 {
				delete(h.interests, bs)
			}
		}
	}
	clear(s.interests)
}

// register adds one (backend sub -> frontend sub) interest for an online
// subscriber; a no-op while the subscriber is offline (attach will index
// its interests when it connects).
func (h *sessionHub) register(subscriber, backendSub, frontendSub string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.sessions[subscriber]
	if s == nil {
		return
	}
	s.interests[backendSub] = frontendSub
	m := h.interests[backendSub]
	if m == nil {
		m = make(map[*session]string, 1)
		h.interests[backendSub] = m
	}
	m[s] = frontendSub
}

// deregister removes one interest for an online subscriber.
func (h *sessionHub) deregister(subscriber, backendSub string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.sessions[subscriber]
	if s == nil {
		return
	}
	delete(s.interests, backendSub)
	if m := h.interests[backendSub]; m != nil {
		delete(m, s)
		if len(m) == 0 {
			delete(h.interests, backendSub)
		}
	}
}

// detach removes the subscriber's session if it still owns the given
// connection.
func (h *sessionHub) detach(subscriber string, conn *wsock.Conn) {
	h.mu.Lock()
	s := h.sessions[subscriber]
	if s != nil && s.conn == conn {
		delete(h.sessions, subscriber)
		h.unlink(s)
	} else {
		s = nil
	}
	h.mu.Unlock()
	if s != nil {
		s.close()
		s.release()
	}
}

// drop removes a session after a write failure.
func (h *sessionHub) drop(s *session) {
	h.mu.Lock()
	owned := h.sessions[s.subscriber] == s
	if owned {
		delete(h.sessions, s.subscriber)
		h.unlink(s)
	}
	h.mu.Unlock()
	s.close()
	if owned {
		s.release()
	}
}

// online reports whether the subscriber has a live connection.
func (h *sessionHub) online(subscriber string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.sessions[subscriber] != nil
}

// count returns the number of online subscribers.
func (h *sessionHub) count() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.sessions)
}

// audienceSize returns how many online sessions are interested in a
// backend subscription (tests, stats).
func (h *sessionHub) audienceSize(backendSub string) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.interests[backendSub])
}

// drain migrates every live session: further attaches are refused, each
// session's pending markers are flushed (bounded by ctx) and each socket
// is closed with a migrate frame naming the successor broker. Once the
// last session is migrated the writer pool is stopped — a drained hub
// accepts no new sessions, so the writers have nothing left to do. It
// returns how many sessions were migrated.
func (h *sessionHub) drain(ctx context.Context, successor string) int {
	h.mu.Lock()
	h.draining = true
	h.successor = successor
	sessions := make([]*session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
		h.unlink(s)
	}
	clear(h.sessions)
	h.mu.Unlock()

	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *session) {
			defer wg.Done()
			s.migrate(ctx, successor)
			s.release()
		}(s)
	}
	wg.Wait()
	h.stop()
	return len(sessions)
}

// rebalance migrates the subset of live sessions decide selects: each
// selected session's pending markers are flushed (bounded by ctx) and its
// socket is closed with a migrate frame naming that session's successor.
// Unlike drain, the hub keeps accepting attaches — the broker remains a
// live fabric member, it just stopped owning the moved subscribers.
func (h *sessionHub) rebalance(ctx context.Context, decide func(subscriber string) (successor string, move bool)) int {
	type moved struct {
		s         *session
		successor string
	}
	h.mu.Lock()
	var moves []moved
	for sub, s := range h.sessions {
		if succ, ok := decide(sub); ok {
			moves = append(moves, moved{s, succ})
			delete(h.sessions, sub)
			h.unlink(s)
		}
	}
	h.mu.Unlock()

	var wg sync.WaitGroup
	for _, mv := range moves {
		wg.Add(1)
		go func(mv moved) {
			defer wg.Done()
			mv.s.migrate(ctx, mv.successor)
			mv.s.release()
		}(mv)
	}
	wg.Wait()
	return len(moves)
}

// queueDepth returns the total number of pending markers across sessions
// (markers a writer has popped but not yet written are excluded).
func (h *sessionHub) queueDepth() int {
	h.mu.RLock()
	sessions := make([]*session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.RUnlock()
	total := 0
	for _, s := range sessions {
		total += s.queuedLen()
	}
	return total
}

// PushStats is a point-in-time snapshot of the asynchronous push
// pipeline's counters.
type PushStats struct {
	// Enqueued counts markers accepted into session queues.
	Enqueued uint64
	// Coalesced counts markers merged latest-wins into a queued marker.
	Coalesced uint64
	// Dropped counts oldest-pending markers evicted on queue overflow.
	Dropped uint64
	// Failures counts encode errors and failed socket writes.
	Failures uint64
	// QueueDepth is the current total of pending markers across sessions.
	QueueDepth int
}

func (h *sessionHub) snapshot() PushStats {
	return PushStats{
		Enqueued:   h.stats.enqueued.Load(),
		Coalesced:  h.stats.coalesced.Load(),
		Dropped:    h.stats.dropped.Load(),
		Failures:   h.stats.failures.Load(),
		QueueDepth: h.queueDepth(),
	}
}

// newEvent draws a pooled event, encodes the shared wire frame for one
// backend-subscription marker and arms its reference count.
func (h *sessionHub) newEvent(ctx context.Context, backendSub string, latest int64, audience int) (*pushEvent, bool) {
	ev := eventPool.Get().(*pushEvent)
	ev.latest = latest
	tp := ""
	sc, _ := obs.SpanFromContext(ctx)
	if sc.Valid() {
		tp = sc.Traceparent()
		ev.at = time.Now()
	}
	ev.span = sc
	payload, err := appendPushJSON(ev.pm.Payload()[:0], backendSub, latest, tp)
	if err != nil {
		h.stats.failures.Add(1)
		h.log.WarnContext(ctx, "encoding push notification failed",
			slog.String("backend_sub", backendSub), slog.Any("error", err))
		eventPool.Put(ev)
		return nil, false
	}
	if err := ev.pm.Encode(wsock.OpText, payload); err != nil {
		h.stats.failures.Add(1)
		h.log.WarnContext(ctx, "preparing push frame failed",
			slog.String("backend_sub", backendSub), slog.Any("error", err))
		eventPool.Put(ev)
		return nil, false
	}
	ev.refs.Store(int32(audience))
	return ev, true
}

// broadcast fans one backend-subscription event out to every online
// session interested in it. The audience is one index lookup — not a scan
// of sessions — the payload is marshaled once and pre-framed once into a
// pooled buffer, and per session the cost is a non-blocking enqueue, so
// the arrival path never waits on a subscriber's socket. It returns how
// many sessions accepted the marker.
func (h *sessionHub) broadcast(ctx context.Context, backendSub string, latest int64) int {
	h.mu.RLock()
	audience := h.interests[backendSub]
	if len(audience) == 0 {
		h.mu.RUnlock()
		return 0
	}
	ev, ok := h.newEvent(ctx, backendSub, latest, len(audience))
	if !ok {
		h.mu.RUnlock()
		return 0
	}
	accepted := 0
	for s, fs := range audience {
		if s.enqueue(fs, ev) {
			accepted++
		}
	}
	h.mu.RUnlock()
	return accepted
}

// broadcastTo pushes one event to a single subscriber (the resume path:
// re-arming live push after a backfill). It reports whether the
// subscriber was online and accepted the marker.
func (h *sessionHub) broadcastTo(ctx context.Context, backendSub, subscriber, frontendSub string, latest int64) bool {
	h.mu.RLock()
	s := h.sessions[subscriber]
	if s == nil {
		h.mu.RUnlock()
		return false
	}
	ev, ok := h.newEvent(ctx, backendSub, latest, 1)
	if !ok {
		h.mu.RUnlock()
		return false
	}
	accepted := s.enqueue(frontendSub, ev)
	h.mu.RUnlock()
	return accepted
}
