package broker

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"gobad/internal/bdms"
	"gobad/internal/core"
	"gobad/internal/metrics"
)

// Warm cache handoff: a draining broker serializes its shard managers'
// warm entries and ships them to its HRW successor (and to a local
// snapshot file), so a restarted or successor broker does not start
// ice-cold and stampede the cluster with backfill fetches. Entries are
// keyed by the fabric key — the portable cache identity — because backend
// subscription IDs and cache IDs are broker-local.
//
// Intake is two-tier: entries whose (channel, params) already have a live
// backend subscription are applied straight into the cache; the rest are
// stashed (bounded, staleness-filtered) and consumed when a matching
// subscribe arrives. Consumption advances the backend timestamp marker,
// so the resume backfill that follows fetches only what was produced
// AFTER the handoff — usually nothing.

// WarmupStats counts warm-handoff activity.
type WarmupStats struct {
	// Hits counts fresh backend subscriptions seeded from warm state.
	Hits metrics.Counter
	// Misses counts fresh backend subscriptions that started cold.
	Misses metrics.Counter
	// ObjectsLoaded counts cache objects restored from warm entries.
	ObjectsLoaded metrics.Counter
	// EntriesApplied counts snapshot entries applied onto live
	// subscriptions at intake time.
	EntriesApplied metrics.Counter
	// EntriesStashed counts snapshot entries parked for future subscribes.
	EntriesStashed metrics.Counter
	// EntriesDropped counts snapshot entries rejected (stale snapshot or
	// stash budget exhausted).
	EntriesDropped metrics.Counter
	// SnapshotsTaken counts SnapshotCache calls (drain handoffs).
	SnapshotsTaken metrics.Counter
}

// Warm-handoff limits (Config overrides).
const (
	// DefaultWarmupMaxBytes bounds a snapshot's (and the stash's) payload
	// volume.
	DefaultWarmupMaxBytes = 32 << 20
	// DefaultWarmupMaxAge is how stale a snapshot may be before intake
	// rejects it — warm state older than this would poison resume markers
	// with a horizon the cluster has long moved past.
	DefaultWarmupMaxAge = 5 * time.Minute
)

// warmEntry is one stashed snapshot entry awaiting a matching subscribe.
type warmEntry struct {
	e     bdms.CacheWarmEntry
	bytes int64
}

// warmStore is the bounded stash of not-yet-consumed warm entries.
type warmStore struct {
	mu       sync.Mutex
	entries  map[string]*warmEntry // by fabric key
	bytes    int64
	maxBytes int64
}

func newWarmStore(maxBytes int64) *warmStore {
	if maxBytes <= 0 {
		maxBytes = DefaultWarmupMaxBytes
	}
	return &warmStore{entries: make(map[string]*warmEntry), maxBytes: maxBytes}
}

// put stashes an entry, reporting false when the budget is exhausted.
func (w *warmStore) put(e bdms.CacheWarmEntry) bool {
	n := warmEntryBytes(e)
	w.mu.Lock()
	defer w.mu.Unlock()
	if old, ok := w.entries[e.FabricKey]; ok {
		w.bytes -= old.bytes
		delete(w.entries, e.FabricKey)
	}
	if w.bytes+n > w.maxBytes {
		return false
	}
	w.entries[e.FabricKey] = &warmEntry{e: e, bytes: n}
	w.bytes += n
	return true
}

// take removes and returns the entry for a fabric key.
func (w *warmStore) take(fkey string) (bdms.CacheWarmEntry, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ent, ok := w.entries[fkey]
	if !ok {
		return bdms.CacheWarmEntry{}, false
	}
	delete(w.entries, fkey)
	w.bytes -= ent.bytes
	return ent.e, true
}

// size returns the stashed entry count.
func (w *warmStore) size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

func warmEntryBytes(e bdms.CacheWarmEntry) int64 {
	n := int64(len(e.FabricKey) + len(e.Channel) + 64)
	for _, o := range e.Objects {
		n += o.Size + int64(len(o.ID)) + 32
	}
	return n
}

// WarmupStats exposes the broker's warm-handoff counters.
func (b *Broker) WarmupStats() *WarmupStats { return &b.warmupStats }

// WarmStashSize returns how many warm entries await a matching subscribe.
func (b *Broker) WarmStashSize() int { return b.warm.size() }

// SetWarming flips the /v1/healthz readiness state: a warming broker is
// up but still restoring warm state, and BCS placement excludes it until
// it reports ready.
func (b *Broker) SetWarming(v bool) { b.warming.Store(v) }

// Warming reports whether the broker is still restoring warm state.
func (b *Broker) Warming() bool { return b.warming.Load() }

// SnapshotCache serializes the warm entries of every backend
// subscription's result cache, hottest (most attached subscribers) first,
// bounded by the configured byte budget. Called on graceful drain; the
// result is shipped to the HRW successor and written beside the broker
// for its own restart.
func (b *Broker) SnapshotCache() bdms.CacheSnapshot {
	b.warmupStats.SnapshotsTaken.Inc()
	type cand struct {
		bs   *backendSub
		refs int
		bts  time.Duration
	}
	b.mu.Lock()
	cands := make([]cand, 0, len(b.backendSubs))
	for _, bs := range b.backendSubs {
		cands = append(cands, cand{bs: bs, refs: bs.refs, bts: bs.bts})
	}
	b.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].refs != cands[j].refs {
			return cands[i].refs > cands[j].refs
		}
		return cands[i].bs.fkey < cands[j].bs.fkey
	})

	snap := bdms.CacheSnapshot{
		Version:     bdms.CacheSnapshotVersion,
		Broker:      b.id,
		TakenUnixNS: time.Now().UnixNano(),
	}
	var budget int64
	for _, c := range cands {
		if c.bts <= 0 {
			continue
		}
		objs, _ := b.manager.Peek(c.bs.id, 0, c.bts, true)
		entry := bdms.CacheWarmEntry{
			FabricKey: c.bs.fkey, Channel: c.bs.channel,
			Params: c.bs.params, BTSNS: int64(c.bts),
		}
		for _, o := range objs {
			rows, ok := o.Payload.([]map[string]any)
			if !ok {
				continue
			}
			entry.Objects = append(entry.Objects, bdms.CacheWarmObject{
				ID: o.ID, TimestampNS: int64(o.Timestamp), Size: o.Size,
				FetchLatencyNS: int64(o.FetchLatency), Rows: rows,
			})
		}
		budget += warmEntryBytes(entry)
		if budget > b.warm.maxBytes {
			break
		}
		// Even an object-less entry is worth shipping: its BTS marker
		// spares the successor the backfill range fetch.
		snap.Entries = append(snap.Entries, entry)
	}
	return snap
}

// InstallWarmup ingests a warm cache snapshot (peer handoff or local
// restore). Stale snapshots are rejected wholesale; fresh entries are
// applied onto live backend subscriptions immediately and stashed for
// future subscribes otherwise.
func (b *Broker) InstallWarmup(ctx context.Context, snap bdms.CacheSnapshot) bdms.WarmupResponse {
	var resp bdms.WarmupResponse
	ctx, sp := b.traces.Start(ctx, "broker.warmup")
	defer sp.End()
	if snap.Version != bdms.CacheSnapshotVersion {
		resp.Dropped = len(snap.Entries)
		b.warmupStats.EntriesDropped.Add(float64(resp.Dropped))
		sp.SetError(fmt.Errorf("broker: unsupported cache snapshot version %d", snap.Version))
		return resp
	}
	if age := time.Since(time.Unix(0, snap.TakenUnixNS)); age > b.warmupMaxAge {
		resp.Dropped = len(snap.Entries)
		b.warmupStats.EntriesDropped.Add(float64(resp.Dropped))
		b.log.WarnContext(ctx, "rejecting stale warm snapshot",
			slog.String("from", snap.Broker), slog.Duration("age", age))
		sp.SetAttr("stale", "true")
		return resp
	}
	for _, e := range snap.Entries {
		b.mu.Lock()
		bs := b.byFabric[e.FabricKey]
		b.mu.Unlock()
		if bs != nil {
			b.applyWarmEntry(ctx, bs, e)
			resp.Applied++
			b.warmupStats.EntriesApplied.Inc()
			continue
		}
		if b.warm.put(e) {
			resp.Stashed++
			b.warmupStats.EntriesStashed.Inc()
		} else {
			resp.Dropped++
			b.warmupStats.EntriesDropped.Inc()
		}
	}
	sp.SetAttr("applied", fmt.Sprintf("%d", resp.Applied))
	sp.SetAttr("stashed", fmt.Sprintf("%d", resp.Stashed))
	sp.SetAttr("dropped", fmt.Sprintf("%d", resp.Dropped))
	return resp
}

// consumeWarm seeds a freshly created backend subscription from the warm
// stash (if a handoff left matching state) and tallies the hit/miss.
// Called once per backend-subscription creation.
func (b *Broker) consumeWarm(ctx context.Context, bs *backendSub) {
	e, ok := b.warm.take(bs.fkey)
	if !ok {
		b.warmupStats.Misses.Inc()
		return
	}
	ctx, sp := b.traces.Start(ctx, "broker.warmup")
	sp.SetAttr("fabric_key", bs.fkey)
	n := b.applyWarmEntry(ctx, bs, e)
	sp.SetAttr("objects", fmt.Sprintf("%d", n))
	sp.End()
	b.warmupStats.Hits.Inc()
}

// applyWarmEntry loads one warm entry into a subscription's result cache
// under the pull lock and advances the backend timestamp marker to the
// predecessor's high-water mark, so the subsequent backfill fetches only
// results produced after the handoff. Returns the objects loaded.
func (b *Broker) applyWarmEntry(ctx context.Context, bs *backendSub, e bdms.CacheWarmEntry) int {
	bs.pullMu.Lock()
	defer bs.pullMu.Unlock()
	b.mu.Lock()
	from := bs.bts
	b.mu.Unlock()
	loaded := 0
	if _, isNC := b.manager.Policy().(core.NC); !isNC {
		now := b.clock()
		objs := append([]bdms.CacheWarmObject(nil), e.Objects...)
		sort.Slice(objs, func(i, j int) bool { return objs[i].TimestampNS < objs[j].TimestampNS })
		for _, o := range objs {
			ts := time.Duration(o.TimestampNS)
			if ts <= from {
				continue
			}
			obj := &core.Object{
				ID: o.ID, Timestamp: ts, Size: o.Size,
				FetchLatency: time.Duration(o.FetchLatencyNS), Payload: o.Rows,
			}
			if err := b.manager.Put(bs.id, obj, now); err != nil {
				b.log.WarnContext(ctx, "warmup cache put failed",
					slog.String("backend_sub", bs.id), slog.String("object", o.ID),
					slog.Any("error", err))
				break
			}
			loaded++
		}
	}
	b.warmupStats.ObjectsLoaded.Add(float64(loaded))
	if bts := time.Duration(e.BTSNS); bts > from {
		b.mu.Lock()
		if bts > bs.bts {
			bs.bts = bts
		}
		b.mu.Unlock()
	}
	return loaded
}
