package broker

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gobad/internal/bcs"
	"gobad/internal/httpx"
)

// Registration keeps a broker registered and heartbeating with the Broker
// Coordination Service until closed.
type Registration struct {
	stop chan struct{}
	done sync.WaitGroup
}

// RegisterWithBCS registers the broker at the BCS under its client-facing
// address and starts a heartbeat loop reporting subscriber load every
// interval. Close the returned Registration to deregister.
func RegisterWithBCS(b *Broker, bcsClient *bcs.Client, address string, interval time.Duration) (*Registration, error) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if err := bcsClient.Register(b.ID(), address); err != nil {
		return nil, fmt.Errorf("broker: BCS registration: %w", err)
	}
	// Report readiness immediately: a broker that registers while still
	// warming must not receive placement before its first ticker beat.
	_ = bcsClient.HeartbeatState(b.ID(), b.NumSubscribers(), b.Warming())
	reg := &Registration{stop: make(chan struct{})}
	reg.done.Add(1)
	go func() {
		defer reg.done.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-reg.stop:
				_ = bcsClient.Deregister(b.ID())
				return
			case <-ticker.C:
				// A failed heartbeat is retried on the next tick; the
				// BCS treats stale brokers as dead in the meantime. A 404
				// means the BCS no longer knows this broker — it restarted
				// and lost its registry — so re-register immediately:
				// Assign serves this broker again without operator help.
				err := bcsClient.HeartbeatState(b.ID(), b.NumSubscribers(), b.Warming())
				var se *httpx.StatusError
				if errors.As(err, &se) && se.Status == http.StatusNotFound {
					_ = bcsClient.Register(b.ID(), address)
				}
			}
		}
	}()
	return reg, nil
}

// Close stops the heartbeat loop and deregisters the broker.
func (r *Registration) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.done.Wait()
}
