package broker

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gobad/internal/bcs"
	"gobad/internal/core"
)

// swappableHandler lets a test replace the handler behind a stable URL —
// the moral equivalent of restarting the service on the same address.
type swappableHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swappableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

func (s *swappableHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// TestRegistrationSurvivesBCSRestart is the failover regression for the
// heartbeat loop: when the BCS restarts and loses its registry, heartbeats
// start answering 404 — the loop must re-register the broker so Assign
// serves it again with no operator intervention.
func TestRegistrationSurvivesBCSRestart(t *testing.T) {
	env := newTestEnv(t, core.LSC{}, 1<<20)

	svc1 := bcs.NewService()
	sw := &swappableHandler{h: bcs.NewServer(svc1).Handler()}
	srv := httptest.NewServer(sw)
	t.Cleanup(srv.Close)

	reg, err := RegisterWithBCS(env.broker, bcs.NewClient(srv.URL, nil), "http://broker-1", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	if _, err := svc1.Assign(); err != nil {
		t.Fatalf("Assign before restart: %v", err)
	}

	// "Restart" the BCS: fresh empty service on the same URL.
	svc2 := bcs.NewService()
	sw.swap(bcs.NewServer(svc2).Handler())

	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, err := svc2.Assign(); err == nil {
			if got.ID != env.broker.ID() || got.Address != "http://broker-1" {
				t.Fatalf("re-registered as %+v, want id=%s address=http://broker-1", got, env.broker.ID())
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("broker never re-registered with the restarted BCS")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
