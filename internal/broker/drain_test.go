package broker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"gobad/internal/wsock"
)

// TestDrainMigratesAllSessions is the graceful-drain acceptance test: with
// well over a hundred live WebSocket sessions, each holding a queued push,
// a drain must flush every queue, close every socket with a migrate frame
// naming the successor, count every session, and refuse new work.
func TestDrainMigratesAllSessions(t *testing.T) {
	env, srv := newHTTPEnv(t)
	const nSessions = 120
	const successor = "http://successor-broker:18080"

	conns := make([]*wsock.Conn, nSessions)
	for i := 0; i < nSessions; i++ {
		sub := fmt.Sprintf("sub-%03d", i)
		if _, err := env.broker.Subscribe(sub, "Alerts", []any{"fire"}); err != nil {
			t.Fatal(err)
		}
		conn, err := wsock.Dial(srv.URL+"/ws?subscriber="+sub, 5*time.Second)
		if err != nil {
			t.Fatalf("dial session %d: %v", i, err)
		}
		conns[i] = conn
		t.Cleanup(func() { _ = conn.Close() })
	}
	if got := env.broker.sessions.count(); got != nSessions {
		t.Fatalf("online sessions = %d, want %d", got, nSessions)
	}

	// One publication fans a push marker into every session's queue; the
	// drain must put each marker on the wire before the migrate frame.
	env.publish(t, "fire", 7)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if got := env.broker.Drain(ctx, successor); got != nSessions {
		t.Fatalf("Drain migrated %d sessions, want %d", got, nSessions)
	}
	if got := env.broker.Failover().DrainMigrated.Load(); got != nSessions {
		t.Errorf("bad_drain_migrated_sessions_total = %d, want %d", got, nSessions)
	}

	for i, conn := range conns {
		if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		// The queued push arrives first — nothing in-queue is lost...
		_, payload, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("session %d: queued push lost to the drain: %v", i, err)
		}
		var n PushNotification
		if err := json.Unmarshal(payload, &n); err != nil {
			t.Fatalf("session %d: bad push payload: %v", i, err)
		}
		// ...then the socket closes with the migrate frame.
		if _, _, err := conn.ReadMessage(); err == nil {
			t.Fatalf("session %d: socket still open after drain", i)
		}
		code, reason := conn.CloseStatus()
		if code != wsock.CloseServiceRestart || reason != successor {
			t.Fatalf("session %d: close = (%d, %q), want (%d, %q)",
				i, code, reason, wsock.CloseServiceRestart, successor)
		}
	}

	// A draining broker refuses new subscriptions (503 on the wire maps to
	// ErrDraining in-process) and new sessions.
	_, err := env.broker.SubscribeResume(context.Background(), "late", "Alerts", []any{"fire"}, NoResume)
	if !errors.Is(err, ErrDraining) {
		t.Errorf("SubscribeResume during drain = %v, want ErrDraining", err)
	}
	if _, err := wsock.Dial(srv.URL+"/ws?subscriber=late", 2*time.Second); err == nil {
		t.Error("WebSocket attach during drain must be refused")
	}
}
