package broker

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gobad/internal/bdms"
	"gobad/internal/httpx"
	"gobad/internal/obs"
)

func healthStatus(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	var out map[string]string
	if err := httpx.DoJSON(srv.Client(), http.MethodGet, srv.URL+path, nil, &out); err != nil {
		t.Fatal(err)
	}
	return out["status"]
}

// TestHealthzReadinessStates: /v1/healthz (and the unversioned alias)
// report ok → warming → ok → draining as the broker moves through a
// restart-and-drain lifecycle, so orchestrators and fabric peers can gate
// on readiness.
func TestHealthzReadinessStates(t *testing.T) {
	env, srv := newHTTPEnv(t)
	if got := healthStatus(t, srv, "/v1/healthz"); got != "ok" {
		t.Errorf("fresh broker status = %q, want ok", got)
	}
	env.broker.SetWarming(true)
	if got := healthStatus(t, srv, "/v1/healthz"); got != "warming" {
		t.Errorf("status = %q, want warming", got)
	}
	if got := healthStatus(t, srv, "/healthz"); got != "warming" {
		t.Errorf("unversioned alias status = %q, want warming", got)
	}
	env.broker.SetWarming(false)
	if got := healthStatus(t, srv, "/v1/healthz"); got != "ok" {
		t.Errorf("status = %q, want ok after warm-up", got)
	}
	env.broker.Drain(t.Context(), "")
	if got := healthStatus(t, srv, "/v1/healthz"); got != "draining" {
		t.Errorf("status = %q, want draining", got)
	}
}

// TestPeerWarmupEndpoint: a predecessor's cache snapshot POSTed to
// /v1/peer/warmup is stashed and then consumed by the matching subscribe.
func TestPeerWarmupEndpoint(t *testing.T) {
	env, srv := newHTTPEnv(t)
	snap := bdms.CacheSnapshot{
		Version:     bdms.CacheSnapshotVersion,
		Broker:      "predecessor",
		TakenUnixNS: time.Now().UnixNano(),
		Entries: []bdms.CacheWarmEntry{{
			FabricKey: FabricKey("Alerts", []any{"fire"}),
			Channel:   "Alerts", Params: []any{"fire"}, BTSNS: 1,
		}},
	}
	var resp bdms.WarmupResponse
	if err := httpx.DoJSON(srv.Client(), http.MethodPost, srv.URL+"/v1/peer/warmup", snap, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stashed != 1 || resp.Applied != 0 || resp.Dropped != 0 {
		t.Errorf("warmup response = %+v, want 1 stashed", resp)
	}
	if env.broker.WarmStashSize() != 1 {
		t.Errorf("stash size = %d, want 1", env.broker.WarmStashSize())
	}
	if _, err := env.broker.Subscribe("alice", "Alerts", []any{"fire"}); err != nil {
		t.Fatal(err)
	}
	if env.broker.WarmStashSize() != 0 {
		t.Errorf("stash size = %d, want 0 after the matching subscribe", env.broker.WarmStashSize())
	}
	if hits := env.broker.WarmupStats().Hits.Value(); hits != 1 {
		t.Errorf("warmup hits = %v, want 1", hits)
	}
}

// TestPeerWarmupDrainingRefuses: a draining broker must not absorb a
// snapshot it is about to hand off itself.
func TestPeerWarmupDrainingRefuses(t *testing.T) {
	env, srv := newHTTPEnv(t)
	env.broker.Drain(t.Context(), "")
	snap := bdms.CacheSnapshot{Version: bdms.CacheSnapshotVersion, Broker: "p"}
	err := httpx.DoJSON(srv.Client(), http.MethodPost, srv.URL+"/v1/peer/warmup", snap, nil)
	var se *httpx.StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable || se.Code != bdms.CodePeerDraining {
		t.Fatalf("draining warmup err = %v, want 503 %s", err, bdms.CodePeerDraining)
	}
}

// TestPeerWarmupBadBody: malformed JSON is a 400, not a panic or a hang.
func TestPeerWarmupBadBody(t *testing.T) {
	_, srv := newHTTPEnv(t)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/peer/warmup", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body status = %d, want 400", res.StatusCode)
	}
}

// TestWarmupMetricsExposed: the warm-handoff counters are on /metrics.
func TestWarmupMetricsExposed(t *testing.T) {
	env, srv := newHTTPEnv(t)
	env.broker.InstallWarmup(t.Context(), bdms.CacheSnapshot{
		Version:     bdms.CacheSnapshotVersion,
		TakenUnixNS: time.Now().UnixNano(),
		Entries:     []bdms.CacheWarmEntry{{FabricKey: "fk", Channel: "Alerts", BTSNS: 1}},
	})
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	parsed, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("broker /metrics does not parse: %v\n%s", err, body)
	}
	for name, want := range map[string]float64{
		"bad_warmup_entries_stashed_total": 1,
		"bad_warmup_entries_applied_total": 0,
		"bad_warmup_entries_dropped_total": 0,
		"bad_warmup_hits_total":            0,
		"bad_warmup_misses_total":          0,
		"bad_warmup_objects_total":         0,
		"bad_warmup_stash_entries":         1,
	} {
		got, ok := parsed.Value(name)
		if !ok {
			t.Errorf("broker /metrics missing %s", name)
		} else if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}
