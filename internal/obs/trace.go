package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// TraceparentHeader is the W3C Trace Context header carrying the span
// context across process boundaries:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>
//
// httpx server middleware parses it off inbound requests (minting a fresh
// trace when absent) and httpx.DoJSONContext stamps it onto outbound
// requests, so one subscriber retrieval is traceable broker -> cluster.
const TraceparentHeader = "Traceparent"

// SpanContext identifies one span of one trace, W3C Trace Context style.
type SpanContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// Valid reports whether both IDs are non-zero, as the spec requires.
func (sc SpanContext) Valid() bool {
	return sc.TraceID != [16]byte{} && sc.SpanID != [8]byte{}
}

// TraceIDString returns the 32-hex-digit trace ID.
func (sc SpanContext) TraceIDString() string { return hex.EncodeToString(sc.TraceID[:]) }

// SpanIDString returns the 16-hex-digit span ID.
func (sc SpanContext) SpanIDString() string { return hex.EncodeToString(sc.SpanID[:]) }

// Traceparent renders the header value (version 00).
func (sc SpanContext) Traceparent() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, sc.TraceID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, sc.SpanID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, []byte{sc.Flags})
	return string(buf)
}

// Child returns a new span in the same trace (fresh span ID, flags kept).
func (sc SpanContext) Child() SpanContext {
	out := sc
	mustRandom(out.SpanID[:])
	return out
}

// NewSpan mints a root span: new trace ID, new span ID, sampled flag set.
func NewSpan() SpanContext {
	var sc SpanContext
	mustRandom(sc.TraceID[:])
	mustRandom(sc.SpanID[:])
	sc.Flags = 0x01
	return sc
}

// ParseTraceparent parses a traceparent header value. It accepts version 00
// (and unknown future versions with the same prefix shape, per spec) and
// rejects all-zero IDs.
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	var version [1]byte
	if _, err := hex.Decode(version[:], []byte(s[0:2])); err != nil || version[0] == 0xff {
		return sc, false
	}
	if version[0] == 0 && len(s) != 55 {
		return sc, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return sc, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return sc, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return sc, false
	}
	sc.Flags = flags[0]
	if !sc.Valid() {
		return sc, false
	}
	return sc, true
}

// mustRandom fills b from crypto/rand; ID generation failing means the
// platform's randomness is broken, which is not recoverable here.
func mustRandom(b []byte) {
	if _, err := rand.Read(b); err != nil {
		panic("obs: crypto/rand failed: " + err.Error())
	}
}

type ctxKey int

const (
	ctxKeySpan ctxKey = iota
	ctxKeyRequestID
)

// ContextWithSpan attaches a span context.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKeySpan, sc)
}

// SpanFromContext returns the attached span context, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKeySpan).(SpanContext)
	return sc, ok && sc.Valid()
}

// ContextWithRequestID attaches a per-request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestIDFromContext returns the attached request ID ("" if none).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// NewRequestID mints a 16-hex-digit random request ID.
func NewRequestID() string {
	var b [8]byte
	mustRandom(b[:])
	return hex.EncodeToString(b[:])
}
