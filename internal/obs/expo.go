package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format version this package writes.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family in Prometheus text format
// (version 0.0.4): one # HELP and # TYPE line per family, then its sample
// rows. Families are sorted by name and points by label signature, so the
// output is deterministic for a fixed metric state.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Gather() {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		for _, p := range f.Points {
			switch {
			case p.Hist != nil:
				writeHistogram(bw, f.Name, p)
			case p.Summary != nil:
				writeSummary(bw, f.Name, p)
			default:
				writeSample(bw, f.Name, p.Labels, p.Value)
			}
		}
	}
	return bw.Flush()
}

// Handler serves the exposition over HTTP (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WriteText(w)
	})
}

func writeHistogram(w io.Writer, name string, p Point) {
	h := p.Hist
	for i, ub := range h.UpperBounds {
		writeSample(w, name+"_bucket", withLabel(p.Labels, "le", formatFloat(ub)), float64(h.CumCounts[i]))
	}
	writeSample(w, name+"_bucket", withLabel(p.Labels, "le", "+Inf"), float64(h.Count))
	writeSample(w, name+"_sum", p.Labels, h.Sum)
	writeSample(w, name+"_count", p.Labels, float64(h.Count))
}

func writeSummary(w io.Writer, name string, p Point) {
	qs := make([]float64, 0, len(p.Summary.Quantiles))
	for q := range p.Summary.Quantiles {
		qs = append(qs, q)
	}
	sort.Float64s(qs)
	for _, q := range qs {
		writeSample(w, name, withLabel(p.Labels, "quantile", formatFloat(q)), p.Summary.Quantiles[q])
	}
	writeSample(w, name+"_sum", p.Labels, p.Summary.Sum)
	writeSample(w, name+"_count", p.Labels, float64(p.Summary.Count))
}

func writeSample(w io.Writer, name string, labels []Label, v float64) {
	if len(labels) == 0 {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	fmt.Fprintf(w, "%s %s\n", b.String(), formatFloat(v))
}

// withLabel returns labels plus one extra pair (input left untouched).
func withLabel(labels []Label, name, value string) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, Label{Name: name, Value: value})
}

// formatFloat renders a sample value: shortest round-trip representation,
// with the format's spellings for infinities.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes backslash, double-quote and newline, per the
// text format's label value rules.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in # HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
