package obs

import (
	"strconv"
	"time"
)

// HTTPMetrics is the per-route server-side HTTP instrumentation every
// gobad server exposes: request counts by route/method/status, a latency
// histogram per route and an in-flight gauge. Construct with
// NewHTTPMetrics, which registers the families on the given registry.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
	inflight *Gauge
}

// NewHTTPMetrics creates and registers the HTTP metric families.
func NewHTTPMetrics(reg *Registry) *HTTPMetrics {
	m := &HTTPMetrics{
		requests: NewCounterVec("http_requests_total",
			"HTTP requests served, by route pattern, method and status code.",
			"route", "method", "code"),
		latency: NewHistogramVec("http_request_duration_seconds",
			"HTTP request latency by route pattern.", DefBuckets, "route"),
	}
	m.inflight = &Gauge{}
	reg.MustRegister(m.requests, m.latency,
		GaugeFunc("http_requests_in_flight", "Requests currently being served.", m.inflight.Value))
	return m
}

// Begin marks a request in flight; call the returned func when it ends.
func (m *HTTPMetrics) Begin() func() {
	m.inflight.Inc()
	return m.inflight.Dec
}

// Observe records one served request.
func (m *HTTPMetrics) Observe(route, method string, code int, d time.Duration) {
	m.requests.With(route, method, strconv.Itoa(code)).Inc()
	m.latency.With(route).Observe(d.Seconds())
}
