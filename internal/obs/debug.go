package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// NewDebugMux returns the opt-in debug surface the binaries serve on
// -debug-addr: the full net/http/pprof suite under /debug/pprof/ plus an
// expvar-style JSON runtime snapshot at /debug/runtime. It is a separate
// mux (and, in the binaries, a separate listener) so profiling endpoints
// are never exposed on the public API port.
func NewDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	start := time.Now()
	mux.HandleFunc("GET /debug/runtime", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(RuntimeSnapshot(time.Since(start)))
	})
	return mux
}

// RuntimeInfo is the /debug/runtime payload: the process-level numbers an
// operator wants before reaching for a profile.
type RuntimeInfo struct {
	GoVersion     string  `json:"go_version"`
	NumCPU        int     `json:"num_cpu"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	NumGoroutine  int     `json:"num_goroutine"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	HeapObjects    uint64 `json:"heap_objects"`
	StackSysBytes  uint64 `json:"stack_sys_bytes"`
	SysBytes       uint64 `json:"sys_bytes"`
	TotalAllocated uint64 `json:"total_alloc_bytes"`

	NumGC          uint32  `json:"num_gc"`
	PauseTotalSecs float64 `json:"gc_pause_total_seconds"`
	LastGCUnixNano uint64  `json:"last_gc_unix_nano"`
	NextGCBytes    uint64  `json:"next_gc_bytes"`
}

// RuntimeSnapshot captures the current runtime state.
func RuntimeSnapshot(uptime time.Duration) RuntimeInfo {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeInfo{
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumGoroutine:   runtime.NumGoroutine(),
		UptimeSeconds:  uptime.Seconds(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		StackSysBytes:  ms.StackSys,
		SysBytes:       ms.Sys,
		TotalAllocated: ms.TotalAlloc,
		NumGC:          ms.NumGC,
		PauseTotalSecs: time.Duration(ms.PauseTotalNs).Seconds(),
		LastGCUnixNano: ms.LastGC,
		NextGCBytes:    ms.NextGC,
	}
}

// NewRuntimeCollector exposes Go runtime health as metrics
// (go_goroutines, go_memstats_*, go_gc_*), read at scrape time.
func NewRuntimeCollector() Collector {
	return CollectorFunc(func(emit func(Family)) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		emit(Family{Name: "go_goroutines", Help: "Number of goroutines.", Type: GaugeType,
			Points: []Point{{Value: float64(runtime.NumGoroutine())}}})
		emit(Family{Name: "go_memstats_heap_alloc_bytes", Help: "Heap bytes allocated and in use.", Type: GaugeType,
			Points: []Point{{Value: float64(ms.HeapAlloc)}}})
		emit(Family{Name: "go_memstats_sys_bytes", Help: "Bytes obtained from the OS.", Type: GaugeType,
			Points: []Point{{Value: float64(ms.Sys)}}})
		emit(Family{Name: "go_memstats_heap_objects", Help: "Live heap objects.", Type: GaugeType,
			Points: []Point{{Value: float64(ms.HeapObjects)}}})
		emit(Family{Name: "go_gc_cycles_total", Help: "Completed GC cycles.", Type: CounterType,
			Points: []Point{{Value: float64(ms.NumGC)}}})
		emit(Family{Name: "go_gc_pause_seconds_total", Help: "Cumulative GC stop-the-world pause.", Type: CounterType,
			Points: []Point{{Value: time.Duration(ms.PauseTotalNs).Seconds()}}})
	})
}
