package obs

import (
	"math"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"gobad/internal/metrics"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // negative adds are dropped: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Errorf("Counter.Value = %v, want 3.5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-4)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Errorf("Gauge.Value = %v, want 6", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 106 {
		t.Errorf("Sum = %v, want 106", s.Sum)
	}
	wantCum := []uint64{2, 3, 4} // <=1: {0.5, 1}; <=2: +1.5; <=5: +3
	for i, want := range wantCum {
		if s.CumCounts[i] != want {
			t.Errorf("CumCounts[%d] = %d, want %d", i, s.CumCounts[i], want)
		}
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with unsorted bounds should panic")
		}
	}()
	NewHistogram([]float64{2, 1})
}

func TestRegistryRejectsTypeClash(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(NewCounterVec("clash_total", "a counter", "l"))
	defer func() {
		if recover() == nil {
			t.Error("re-registering a name with a different type should panic")
		}
	}()
	reg.MustRegister(NewGaugeVec("clash_total", "now a gauge", "l"))
}

func TestVecChildrenAreStable(t *testing.T) {
	cv := NewCounterVec("stable_total", "h", "k")
	cv.With("a").Add(1)
	cv.With("a").Add(1)
	cv.With("b").Inc()
	if got := cv.With("a").Value(); got != 2 {
		t.Errorf("With(a) = %v, want 2 (children must be shared, not re-created)", got)
	}
	if got := cv.With("b").Value(); got != 1 {
		t.Errorf("With(b) = %v, want 1", got)
	}
}

// gatherText renders the registry and parses it back.
func gatherText(t *testing.T, reg *Registry) (string, *TextMetrics) {
	t.Helper()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	return sb.String(), parsed
}

func TestExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	cv := NewCounterVec("test_requests_total", "Requests served.", "route", "code")
	cv.With("/v1/stats", "200").Add(3)
	cv.With("/v1/stats", "404").Add(1)
	hv := NewHistogramVec("test_latency_seconds", "Latency.", []float64{0.1, 1}, "route")
	hv.With("/v1/stats").Observe(0.05)
	hv.With("/v1/stats").Observe(0.5)
	hv.With("/v1/stats").Observe(5)
	reg.MustRegister(cv, hv, GaugeFunc("test_up", "Liveness.", func() float64 { return 1 }))

	text, parsed := gatherText(t, reg)

	// HELP and TYPE lines present, TYPE correct.
	for name, typ := range map[string]MetricType{
		"test_requests_total": CounterType,
		"test_latency_seconds": HistogramType,
		"test_up":             GaugeType,
	} {
		if parsed.Types[name] != typ {
			t.Errorf("TYPE %s = %q, want %q", name, parsed.Types[name], typ)
		}
		if parsed.Help[name] == "" {
			t.Errorf("missing HELP for %s", name)
		}
	}
	// TYPE precedes samples.
	if strings.Index(text, "# TYPE test_requests_total") > strings.Index(text, `test_requests_total{`) {
		t.Error("TYPE line must precede its samples")
	}

	if v, _ := parsed.Value(`test_requests_total{route="/v1/stats",code="200"}`); v != 3 {
		t.Errorf("counter sample = %v, want 3\n%s", v, text)
	}

	// Histogram: buckets cumulative and monotone, +Inf equals _count.
	var (
		cum []float64
	)
	for _, key := range []string{
		`test_latency_seconds_bucket{route="/v1/stats",le="0.1"}`,
		`test_latency_seconds_bucket{route="/v1/stats",le="1"}`,
		`test_latency_seconds_bucket{route="/v1/stats",le="+Inf"}`,
	} {
		v, ok := parsed.Value(key)
		if !ok {
			t.Fatalf("missing bucket %s\n%s", key, text)
		}
		cum = append(cum, v)
	}
	if !sort.Float64sAreSorted(cum) {
		t.Errorf("buckets not monotone: %v", cum)
	}
	if want := []float64{1, 2, 3}; cum[0] != want[0] || cum[1] != want[1] || cum[2] != want[2] {
		t.Errorf("buckets = %v, want %v", cum, want)
	}
	if cnt, _ := parsed.Value(`test_latency_seconds_count{route="/v1/stats"}`); cnt != 3 {
		t.Errorf("_count = %v, want 3", cnt)
	}
	if sum, _ := parsed.Value(`test_latency_seconds_sum{route="/v1/stats"}`); math.Abs(sum-5.55) > 1e-12 {
		t.Errorf("_sum = %v, want 5.55", sum)
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	gv := NewGaugeVec("test_weird", "Label escaping.", "v")
	gv.With("a\\b\"c\nd").Set(1)
	reg.MustRegister(gv)
	text, _ := gatherText(t, reg) // gatherText fails the test if it cannot parse
	want := `test_weird{v="a\\b\"c\nd"} 1`
	if !strings.Contains(text, want) {
		t.Errorf("escaped sample %q not found in:\n%s", want, text)
	}
}

func TestExpositionMergesSameFamily(t *testing.T) {
	// Two collectors emitting the same family name must merge under one
	// TYPE header instead of repeating it.
	reg := NewRegistry()
	emit1 := CollectorFunc(func(emit func(Family)) {
		emit(Family{Name: "merged_total", Type: CounterType, Points: []Point{{Labels: []Label{{"which", "a"}}, Value: 1}}})
	})
	emit2 := CollectorFunc(func(emit func(Family)) {
		emit(Family{Name: "merged_total", Type: CounterType, Points: []Point{{Labels: []Label{{"which", "b"}}, Value: 2}}})
	})
	reg.MustRegister(emit1, emit2)
	text, parsed := gatherText(t, reg)
	if n := strings.Count(text, "# TYPE merged_total"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1:\n%s", n, text)
	}
	if v, _ := parsed.Value(`merged_total{which="b"}`); v != 2 {
		t.Errorf("merged point = %v, want 2", v)
	}
}

func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(GaugeFunc("test_up", "Liveness.", func() float64 { return 1 }))
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != TextContentType {
		t.Errorf("Content-Type = %q, want %q", ct, TextContentType)
	}
	if !strings.Contains(rr.Body.String(), "test_up 1") {
		t.Errorf("body missing sample:\n%s", rr.Body.String())
	}
}

func TestCacheStatsCollectorMirrorsSnapshot(t *testing.T) {
	stats := &metrics.CacheStats{}
	stats.Requests.Add(10)
	stats.Hits.Add(4)
	stats.HitBytes.Add(4096)
	stats.MissBytes.Add(1024)
	stats.FetchBytes.Add(5120)
	stats.VolumeBytes.Add(4096)
	stats.Evictions.Add(2)
	stats.Latency.Observe(0.25)
	stats.LatencySamples.Observe(0.25)
	stats.CacheSize.Set(0, 100)
	stats.CacheSize.Set(5*time.Second, 300)
	at := 10 * time.Second

	reg := NewRegistry()
	reg.MustRegister(NewCacheStatsCollector(stats, func() time.Duration { return at }))
	_, parsed := gatherText(t, reg)
	snap := stats.SnapshotAt(at)

	checks := map[string]float64{
		"bad_cache_requests_total":            snap.Requests,
		"bad_cache_hits_total":                snap.Hits,
		"bad_cache_hit_ratio":                 snap.HitRatio,
		"bad_cache_hit_bytes_total":           snap.HitBytes,
		"bad_cache_miss_bytes_total":          snap.MissBytes,
		"bad_cache_fetch_bytes_total":         snap.FetchBytes,
		"bad_cache_volume_bytes_total":        snap.VolumeBytes,
		"bad_cache_evictions_total":           snap.Evictions,
		"bad_cache_peer_hits_total":           snap.PeerHits,
		"bad_cache_peer_misses_total":         snap.PeerMisses,
		"bad_cache_peer_hit_ratio":            snap.PeerHitRatio,
		"bad_cache_size_bytes_avg":            snap.AvgCacheSize,
		"bad_cache_size_bytes_max":            snap.MaxCacheSize,
		"bad_cache_holding_time_seconds_mean": snap.HoldingTime,
		`bad_retrieval_latency_seconds{quantile="0.95"}`: snap.P95Latency,
	}
	for key, want := range checks {
		got, ok := parsed.Value(key)
		if !ok {
			t.Errorf("missing sample %s", key)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
}

func TestFormatFloatRoundTrips(t *testing.T) {
	for _, v := range []float64{0, 1, 0.1, 1e308, 123456789.123456789, math.Inf(1)} {
		s := formatFloat(v)
		if math.IsInf(v, 1) {
			if s != "+Inf" {
				t.Errorf("formatFloat(+Inf) = %q", s)
			}
			continue
		}
		back, err := strconv.ParseFloat(s, 64)
		if err != nil || back != v {
			t.Errorf("formatFloat(%v) = %q does not round-trip (%v, %v)", v, s, back, err)
		}
	}
}
