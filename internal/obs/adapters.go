package obs

import (
	"strconv"
	"time"

	"gobad/internal/core"
	"gobad/internal/metrics"
)

// NewCacheStatsCollector exports every metrics.CacheStats field — the
// paper's evaluation bundle (hit ratio, hit/miss/fetch/volume bytes,
// latency, holding time, cache size, drop reasons) — as scrape-time
// families. now supplies the run clock used to close out the time-weighted
// cache-size average; pass the broker's (or simulator's) clock.
//
// The emitted families mirror metrics.Snapshot field-for-field (the sim
// exposition test diffs the two), so a Prometheus scrape and a /v1/stats
// snapshot can never disagree about a run.
func NewCacheStatsCollector(stats *metrics.CacheStats, now func() time.Duration) Collector {
	return CollectorFunc(func(emit func(Family)) {
		counter := func(name, help string, v float64) {
			emit(Family{Name: name, Help: help, Type: CounterType, Points: []Point{{Value: v}}})
		}
		gauge := func(name, help string, v float64) {
			emit(Family{Name: name, Help: help, Type: GaugeType, Points: []Point{{Value: v}}})
		}
		counter("bad_cache_requests_total", "Result objects requested by subscribers.", stats.Requests.Value())
		counter("bad_cache_hits_total", "Result objects served from the broker cache.", stats.Hits.Value())
		gauge("bad_cache_hit_ratio", "Hits/Requests over the whole run (Fig. 3).", stats.HitRatio())
		counter("bad_cache_hit_bytes_total", "Bytes served from the broker cache.", stats.HitBytes.Value())
		counter("bad_cache_miss_bytes_total", "Bytes re-fetched from the data cluster on cache misses.", stats.MissBytes.Value())
		counter("bad_cache_fetch_bytes_total", "All bytes fetched from the data cluster, base volume plus miss re-fetches (Fig. 4a 'fetch').", stats.FetchBytes.Value())
		counter("bad_cache_volume_bytes_total", "Bytes produced by the data cluster for all subscriptions (Fig. 4a 'Vol').", stats.VolumeBytes.Value())
		counter("bad_cache_evictions_total", "Objects dropped by policy eviction.", stats.Evictions.Value())
		counter("bad_cache_expirations_total", "Objects dropped by TTL expiry.", stats.Expirations.Value())
		counter("bad_cache_consumed_total", "Objects dropped because every attached subscriber retrieved them.", stats.Consumed.Value())
		counter("bad_notifications_delivered_total", "Notifications delivered to subscribers.", stats.Delivered.Value())
		counter("bad_cache_fetch_errors_total", "Failed data-cluster fetches.", stats.FetchErrors.Value())
		counter("bad_cache_stale_serves_total", "Retrievals served stale from cache after a fetch failure.", stats.StaleServed.Value())
		counter("bad_cache_peer_hits_total", "Miss lookups answered by a sibling broker's cache instead of the data cluster.", stats.PeerHits.Value())
		counter("bad_cache_peer_misses_total", "Miss lookups that consulted a sibling broker and fell through to the cluster.", stats.PeerMisses.Value())
		gauge("bad_cache_peer_hit_ratio", "Fraction of peer lookups the fabric absorbed without a cluster fetch.", stats.PeerHitRatio())

		at := now()
		gauge("bad_cache_size_bytes", "Currently cached bytes.", stats.CacheSize.Current())
		gauge("bad_cache_size_bytes_avg", "Time-weighted average cached bytes (Fig. 5a).", stats.CacheSize.Average(at))
		gauge("bad_cache_size_bytes_max", "Largest cached byte total ever observed.", stats.CacheSize.Max())
		gauge("bad_cache_holding_time_seconds_mean", "Mean insert-to-drop holding time (Fig. 4c).", stats.HoldingTime.Mean())

		// Subscriber retrieval latency as a summary: mean via _sum/_count
		// (Welford mean * n), tail via the exact sample quantiles.
		n := stats.Latency.N()
		emit(Family{
			Name: "bad_retrieval_latency_seconds",
			Help: "Per-retrieval subscriber latency (Fig. 4b).",
			Type: SummaryType,
			Points: []Point{{Summary: &SummarySnapshot{
				Quantiles: map[float64]float64{
					0.5:  stats.LatencySamples.Quantile(0.5),
					0.95: stats.LatencySamples.Quantile(0.95),
					0.99: stats.LatencySamples.Quantile(0.99),
				},
				Count: uint64(n),
				Sum:   stats.Latency.Mean() * float64(n),
			}}},
		})
	})
}

// NewManagerCollector exports the cache manager's live structure: budget,
// totals, per-shard occupancy and the singleflight coalescing tallies.
func NewManagerCollector(m *core.Manager) Collector {
	return CollectorFunc(func(emit func(Family)) {
		emit(Family{Name: "bad_cache_budget_bytes", Help: "Configured cache budget B.",
			Type: GaugeType, Points: []Point{{Value: float64(m.Budget())}}})
		emit(Family{Name: "bad_cache_total_bytes", Help: "Total cached bytes across all shards.",
			Type: GaugeType, Points: []Point{{Value: float64(m.TotalSize())}}})
		emit(Family{Name: "bad_cache_caches", Help: "Live result caches (backend subscriptions).",
			Type: GaugeType, Points: []Point{{Value: float64(m.NumCaches())}}})

		shards := m.ShardStatsSnapshot()
		bytesPts := make([]Point, 0, len(shards))
		cachePts := make([]Point, 0, len(shards))
		objPts := make([]Point, 0, len(shards))
		for _, st := range shards {
			ls := []Label{{Name: "shard", Value: strconv.Itoa(st.Shard)}}
			bytesPts = append(bytesPts, Point{Labels: ls, Value: float64(st.Bytes)})
			cachePts = append(cachePts, Point{Labels: ls, Value: float64(st.Caches)})
			objPts = append(objPts, Point{Labels: ls, Value: float64(st.Objects)})
		}
		emit(Family{Name: "bad_shard_bytes", Help: "Cached bytes per lock stripe.",
			Type: GaugeType, Points: bytesPts})
		emit(Family{Name: "bad_shard_caches", Help: "Result caches per lock stripe.",
			Type: GaugeType, Points: cachePts})
		emit(Family{Name: "bad_shard_objects", Help: "Cached objects per lock stripe.",
			Type: GaugeType, Points: objPts})

		leaders, coalesced := m.FlightStats()
		emit(Family{Name: "bad_singleflight_leader_total", Help: "Miss fetches executed against the data cluster.",
			Type: CounterType, Points: []Point{{Value: float64(leaders)}}})
		emit(Family{Name: "bad_singleflight_coalesced_total", Help: "Miss fetches coalesced onto an in-flight leader.",
			Type: CounterType, Points: []Point{{Value: float64(coalesced)}}})
	})
}
