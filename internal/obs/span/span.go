// Package span turns the traceparent plumbing in internal/obs into a real
// span subsystem: explicit start/end with parent links and attributes, a
// bounded per-process ring of finished traces, and tail-based sampling
// that always retains slow and error traces. It stays stdlib-only — the
// module has zero dependencies and this package must keep it that way.
//
// The design is deliberately small. A Recorder buffers the spans of each
// in-flight trace; when the last locally-open span of a trace ends, the
// whole trace is either retained (error anywhere, total duration over the
// slow threshold, or head-sampled from the trace ID) or discarded. A
// process can therefore answer "show me the slow deliveries" from memory
// without shipping every span to a backend.
//
// Every method on Recorder and Span is nil-receiver safe, so call sites
// never need a guard: an unconfigured component pays one pointer test per
// operation and records nothing.
package span

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"gobad/internal/obs"
)

// Defaults for NewRecorder; override with the With* options.
const (
	// DefaultCapacity bounds the ring of retained (finished) traces.
	DefaultCapacity = 256
	// DefaultMaxActive bounds the number of in-flight traces buffered at
	// once; beyond it the oldest active trace is dropped.
	DefaultMaxActive = 1024
	// DefaultMaxSpansPerTrace bounds one trace's span buffer so a
	// runaway loop cannot hold the recorder's memory hostage.
	DefaultMaxSpansPerTrace = 512
	// DefaultSlowThreshold marks a trace slow (and therefore always
	// retained) when its local wall-clock footprint reaches it.
	DefaultSlowThreshold = 250 * time.Millisecond
)

// Record is one finished span as exported by /v1/debug/traces and
// -trace-out.
type Record struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	Service    string            `json:"service,omitempty"`
	StartNano  int64             `json:"start_unix_nano"`
	DurationNS int64             `json:"duration_ns"`
	Error      string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Trace is a retained trace: every span this process recorded for one
// trace ID, plus why the tail sampler kept it.
type Trace struct {
	TraceID string `json:"trace_id"`
	// Reason is why the trace survived tail sampling: "error", "slow"
	// or "sampled".
	Reason string   `json:"reason"`
	Spans  []Record `json:"spans"`
}

// Retention reasons, strongest first: an error anywhere in the trace wins
// over slow, which wins over the head-sample decision.
const (
	ReasonError   = "error"
	ReasonSlow    = "slow"
	ReasonSampled = "sampled"
)

// traceBuf buffers the spans of one in-flight trace until its last
// locally-open span ends.
type traceBuf struct {
	spans   []Record
	open    int
	dropped int // spans beyond maxSpansPerTrace
}

// Recorder collects spans into per-trace buffers and retains finished
// traces in a bounded ring. The zero value is not usable; use NewRecorder.
// A nil *Recorder is a valid no-op recorder.
type Recorder struct {
	service   string
	slow      time.Duration
	sampleBar uint64 // retain when trace ID low bits <= bar; 0 = never
	capacity  int
	maxActive int
	maxSpans  int
	now       func() time.Time

	mu          sync.Mutex
	active      map[[16]byte]*traceBuf
	activeOrder [][16]byte // insertion order, for overflow eviction
	ring        []Trace    // circular, len == capacity once full
	ringNext    int

	started   uint64 // spans started
	retained  uint64 // traces kept by the tail sampler
	discarded uint64 // traces finished but not kept
	dropped   uint64 // spans lost to buffer bounds
}

// Option configures a Recorder.
type Option func(*Recorder)

// WithCapacity bounds the ring of retained traces (n <= 0 keeps the
// default).
func WithCapacity(n int) Option {
	return func(r *Recorder) {
		if n > 0 {
			r.capacity = n
		}
	}
}

// WithMaxActive bounds the number of in-flight traces buffered at once.
func WithMaxActive(n int) Option {
	return func(r *Recorder) {
		if n > 0 {
			r.maxActive = n
		}
	}
}

// WithSampleRatio sets the head-sample fraction of ordinary traces (no
// error, under the slow threshold) that the tail sampler retains. The
// decision is deterministic in the trace ID, so every process keeps the
// same subset of a shared trace. 0 keeps only slow and error traces; 1
// (the default) keeps everything the ring can hold.
func WithSampleRatio(f float64) Option {
	return func(r *Recorder) { r.sampleBar = sampleBar(f) }
}

// WithSlowThreshold sets the trace duration at which a trace is always
// retained regardless of the sample ratio. d <= 0 disables the slow
// check.
func WithSlowThreshold(d time.Duration) Option {
	return func(r *Recorder) { r.slow = d }
}

// withClock overrides the wall clock (tests).
func withClock(now func() time.Time) Option {
	return func(r *Recorder) { r.now = now }
}

func sampleBar(f float64) uint64 {
	switch {
	case f <= 0:
		return 0
	case f >= 1:
		return math.MaxUint64
	default:
		return uint64(f * float64(math.MaxUint64))
	}
}

// NewRecorder builds a Recorder whose exported spans carry service as
// their service name.
func NewRecorder(service string, opts ...Option) *Recorder {
	r := &Recorder{
		service:   service,
		slow:      DefaultSlowThreshold,
		sampleBar: sampleBar(1),
		capacity:  DefaultCapacity,
		maxActive: DefaultMaxActive,
		maxSpans:  DefaultMaxSpansPerTrace,
		now:       time.Now,
	}
	for _, opt := range opts {
		opt(r)
	}
	r.active = make(map[[16]byte]*traceBuf)
	return r
}

// Span is one in-flight span. Mutate it (SetAttr, SetError, SetName) only
// from the goroutine that started it, then End it exactly once. A nil
// *Span is a valid no-op.
type Span struct {
	rec       *Recorder
	sc        obs.SpanContext
	parent    [8]byte
	hasParent bool
	name      string
	start     time.Time
	attrs     map[string]string
	errMsg    string
	ended     bool
}

// Start begins a span named name as a child of the span context carried
// by ctx (minting a new root trace when ctx has none) and returns ctx
// with the new span installed, so logging and outbound HTTP pick it up.
// On a nil Recorder the context wiring still happens — trace propagation
// works without recording — and the returned *Span is nil.
func (r *Recorder) Start(ctx context.Context, name string) (context.Context, *Span) {
	var sc obs.SpanContext
	var parent [8]byte
	hasParent := false
	if p, ok := obs.SpanFromContext(ctx); ok {
		sc = p.Child()
		parent = p.SpanID
		hasParent = true
	} else {
		sc = obs.NewSpan()
	}
	return r.startWith(ctx, name, sc, parent, hasParent)
}

// StartRoot begins a span in a brand-new trace, ignoring any span context
// already in ctx. Resumed sessions use it so post-failover deliveries do
// not inherit a dead broker's trace.
func (r *Recorder) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	return r.startWith(ctx, name, obs.NewSpan(), [8]byte{}, false)
}

func (r *Recorder) startWith(ctx context.Context, name string, sc obs.SpanContext, parent [8]byte, hasParent bool) (context.Context, *Span) {
	ctx = obs.ContextWithSpan(ctx, sc)
	if r == nil {
		return ctx, nil
	}
	s := &Span{
		rec:       r,
		sc:        sc,
		parent:    parent,
		hasParent: hasParent,
		name:      name,
		start:     r.now(),
	}
	r.mu.Lock()
	r.started++
	tb := r.active[sc.TraceID]
	if tb == nil {
		if len(r.activeOrder) >= r.maxActive {
			oldest := r.activeOrder[0]
			r.activeOrder = r.activeOrder[1:]
			if ob := r.active[oldest]; ob != nil {
				r.dropped += uint64(len(ob.spans) + ob.open)
			}
			delete(r.active, oldest)
		}
		tb = &traceBuf{}
		r.active[sc.TraceID] = tb
		r.activeOrder = append(r.activeOrder, sc.TraceID)
	}
	tb.open++
	r.mu.Unlock()
	return ctx, s
}

// Context returns the span's context (zero for a nil span).
func (s *Span) Context() obs.SpanContext {
	if s == nil {
		return obs.SpanContext{}
	}
	return s.sc
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// SetName renames the span; cache-resolution spans use it once the
// outcome (local hit, peer hop, ...) is known.
func (s *Span) SetName(name string) {
	if s == nil || s.ended {
		return
	}
	s.name = name
}

// SetError marks the span failed; the whole trace is then always
// retained. A nil err is ignored.
func (s *Span) SetError(err error) {
	if s == nil || s.ended || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// End finishes the span and, if it was the trace's last locally-open
// span, runs the tail-sampling decision for the whole trace. End is
// idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	r := s.rec
	end := r.now()
	rec := Record{
		TraceID:    s.sc.TraceIDString(),
		SpanID:     s.sc.SpanIDString(),
		Name:       s.name,
		Service:    r.service,
		StartNano:  s.start.UnixNano(),
		DurationNS: end.Sub(s.start).Nanoseconds(),
		Error:      s.errMsg,
		Attrs:      s.attrs,
	}
	if s.hasParent {
		var psc obs.SpanContext
		psc.SpanID = s.parent
		rec.ParentID = psc.SpanIDString()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	tb := r.active[s.sc.TraceID]
	if tb == nil {
		// The trace buffer was evicted while this span was open; the
		// span is lost, which the dropped counter already accounts for.
		return
	}
	if len(tb.spans) < r.maxSpans {
		tb.spans = append(tb.spans, rec)
	} else {
		tb.dropped++
		r.dropped++
	}
	tb.open--
	if tb.open > 0 {
		return
	}
	delete(r.active, s.sc.TraceID)
	for i, id := range r.activeOrder {
		if id == s.sc.TraceID {
			r.activeOrder = append(r.activeOrder[:i], r.activeOrder[i+1:]...)
			break
		}
	}
	r.finalizeLocked(s.sc.TraceID, tb)
}

// finalizeLocked decides retention for a finished trace. Caller holds
// r.mu.
func (r *Recorder) finalizeLocked(id [16]byte, tb *traceBuf) {
	reason := ""
	var minStart, maxEnd int64
	for i, sp := range tb.spans {
		if sp.Error != "" {
			reason = ReasonError
		}
		if i == 0 || sp.StartNano < minStart {
			minStart = sp.StartNano
		}
		if e := sp.StartNano + sp.DurationNS; i == 0 || e > maxEnd {
			maxEnd = e
		}
	}
	if reason == "" && r.slow > 0 && len(tb.spans) > 0 &&
		time.Duration(maxEnd-minStart) >= r.slow {
		reason = ReasonSlow
	}
	if reason == "" && r.sampleBar > 0 &&
		binary.BigEndian.Uint64(id[8:]) <= r.sampleBar {
		reason = ReasonSampled
	}
	if reason == "" || len(tb.spans) == 0 {
		r.discarded++
		return
	}
	r.retained++
	t := Trace{TraceID: tb.spans[0].TraceID, Reason: reason, Spans: tb.spans}
	if len(r.ring) < r.capacity {
		r.ring = append(r.ring, t)
		r.ringNext = len(r.ring) % r.capacity
		return
	}
	r.ring[r.ringNext] = t
	r.ringNext = (r.ringNext + 1) % r.capacity
}

// Snapshot returns the retained traces, oldest first, with entries for
// the same trace ID (a trace can finalize more than once when separate
// request legs touch this process at different times) merged: spans
// concatenated and sorted by start time, the strongest reason kept.
func (r *Recorder) Snapshot() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ordered := make([]Trace, 0, len(r.ring))
	if len(r.ring) == r.capacity {
		ordered = append(ordered, r.ring[r.ringNext:]...)
		ordered = append(ordered, r.ring[:r.ringNext]...)
	} else {
		ordered = append(ordered, r.ring...)
	}
	r.mu.Unlock()

	byID := make(map[string]int, len(ordered))
	out := make([]Trace, 0, len(ordered))
	for _, t := range ordered {
		if i, ok := byID[t.TraceID]; ok {
			merged := out[i]
			merged.Spans = append(append([]Record{}, merged.Spans...), t.Spans...)
			if reasonRank(t.Reason) > reasonRank(merged.Reason) {
				merged.Reason = t.Reason
			}
			out[i] = merged
			continue
		}
		byID[t.TraceID] = len(out)
		cp := t
		cp.Spans = append([]Record{}, t.Spans...)
		out = append(out, cp)
	}
	for i := range out {
		sort.SliceStable(out[i].Spans, func(a, b int) bool {
			return out[i].Spans[a].StartNano < out[i].Spans[b].StartNano
		})
	}
	return out
}

func reasonRank(r string) int {
	switch r {
	case ReasonError:
		return 3
	case ReasonSlow:
		return 2
	case ReasonSampled:
		return 1
	}
	return 0
}

// Export is the JSON document served by /v1/debug/traces and written by
// -trace-out.
type Export struct {
	Service        string  `json:"service"`
	SpansStarted   uint64  `json:"spans_started"`
	TracesRetained uint64  `json:"traces_retained"`
	TracesDropped  uint64  `json:"traces_discarded"`
	SpansDropped   uint64  `json:"spans_dropped"`
	Traces         []Trace `json:"traces"`
}

// export builds the JSON payload.
func (r *Recorder) export() Export {
	if r == nil {
		return Export{Traces: []Trace{}}
	}
	traces := r.Snapshot()
	r.mu.Lock()
	e := Export{
		Service:        r.service,
		SpansStarted:   r.started,
		TracesRetained: r.retained,
		TracesDropped:  r.discarded,
		SpansDropped:   r.dropped,
		Traces:         traces,
	}
	r.mu.Unlock()
	if e.Traces == nil {
		e.Traces = []Trace{}
	}
	return e
}

// DumpJSON writes the retained traces as an indented JSON document (the
// -trace-out format).
func (r *Recorder) DumpJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.export())
}

// Handler serves GET /v1/debug/traces. A nil Recorder serves an empty
// document, so the route can be registered unconditionally.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.DumpJSON(w)
	})
}

// Collector exposes the recorder's health counters on /metrics.
func (r *Recorder) Collector() obs.Collector {
	return obs.CollectorFunc(func(emit func(obs.Family)) {
		if r == nil {
			return
		}
		r.mu.Lock()
		started, retained, discarded, dropped := r.started, r.retained, r.discarded, r.dropped
		r.mu.Unlock()
		emit(obs.Family{Name: "bad_trace_spans_started_total", Help: "Spans started by the in-process recorder.",
			Type: obs.CounterType, Points: []obs.Point{{Value: float64(started)}}})
		emit(obs.Family{Name: "bad_traces_retained_total", Help: "Traces kept by the tail sampler (error, slow, or head-sampled).",
			Type: obs.CounterType, Points: []obs.Point{{Value: float64(retained)}}})
		emit(obs.Family{Name: "bad_traces_discarded_total", Help: "Traces finished but discarded by the tail sampler.",
			Type: obs.CounterType, Points: []obs.Point{{Value: float64(discarded)}}})
		emit(obs.Family{Name: "bad_trace_spans_dropped_total", Help: "Spans lost to recorder buffer bounds.",
			Type: obs.CounterType, Points: []obs.Point{{Value: float64(dropped)}}})
	})
}

// ErrNotFound reports a trace ID absent from the ring (used by tests and
// Lookup callers).
var ErrNotFound = errors.New("span: trace not found")

// Lookup returns the retained trace with the given hex trace ID.
func (r *Recorder) Lookup(traceID string) (Trace, error) {
	for _, t := range r.Snapshot() {
		if t.TraceID == traceID {
			return t, nil
		}
	}
	return Trace{}, fmt.Errorf("%w: %s", ErrNotFound, traceID)
}
