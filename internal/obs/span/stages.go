package span

import (
	"context"
	"log/slog"
	"time"

	"gobad/internal/obs"
)

// DeliveryLatencyName is the SLO histogram family every component emits:
// per-stage delivery latency, labeled by cache outcome where one applies.
const DeliveryLatencyName = "bad_delivery_latency_seconds"

// Delivery stages. The set is fixed — labels stay bounded no matter how
// many subscriptions, channels or peers exist.
const (
	StageClusterEval = "cluster_eval"     // cluster: ingest -> subscriptions evaluated
	StageWebhook     = "webhook_delivery" // cluster: notification POST round-trip
	StageBrokerPull  = "broker_pull"      // broker: results fetch from the cluster
	StagePeerLookup  = "peer_lookup"      // broker: fabric peer cache fetch
	StageRetrieve    = "retrieve"         // broker: full cache resolution (outcome-labeled)
	StageQueueWait   = "queue_wait"       // broker: push enqueue -> writer dequeue
	StageWSWrite     = "ws_write"         // broker: WebSocket frame write (sim: broker->subscriber link)
	StageClientAck   = "client_ack"       // client: results GET + ack POST round-trip
)

// Cache outcomes for the retrieve stage; every other stage uses
// OutcomeNone.
const (
	OutcomeNone         = "none"
	OutcomeLocalHit     = "local_hit"
	OutcomePeerHop      = "peer_hop"
	OutcomeClusterFetch = "cluster_fetch"
	OutcomeStaleServe   = "stale_serve"
)

// DeliveryBuckets spans sub-millisecond cache hits through multi-second
// degraded fetches.
var DeliveryBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// NewDeliveryHistogram builds the canonical bad_delivery_latency_seconds
// family. badsim registers one directly; servers wrap one in Stages.
func NewDeliveryHistogram() *obs.HistogramVec {
	return obs.NewHistogramVec(DeliveryLatencyName,
		"Notification delivery latency by pipeline stage and cache outcome.",
		DeliveryBuckets, "stage", "outcome")
}

// Stages observes per-stage delivery latency and WARN-logs observations
// at or above the slow threshold, stamped with the request's trace ID so
// a slow bucket line leads straight to its retained trace. A nil *Stages
// is a valid no-op.
type Stages struct {
	hist *obs.HistogramVec
	slow time.Duration
	log  *slog.Logger
}

// NewStages builds a Stages helper. slow <= 0 disables the slow-bucket
// log line; logger may be nil.
func NewStages(slow time.Duration, logger *slog.Logger) *Stages {
	return &Stages{hist: NewDeliveryHistogram(), slow: slow, log: logger}
}

// Histogram returns the underlying family for registry registration.
func (s *Stages) Histogram() *obs.HistogramVec {
	if s == nil {
		return nil
	}
	return s.hist
}

// Observe records one stage observation. ctx supplies the trace ID for
// the slow-bucket log line.
func (s *Stages) Observe(ctx context.Context, stage, outcome string, d time.Duration) {
	if s == nil {
		return
	}
	if outcome == "" {
		outcome = OutcomeNone
	}
	s.hist.With(stage, outcome).Observe(d.Seconds())
	if s.slow > 0 && d >= s.slow && s.log != nil {
		// WarnContext lets the obs context handler stamp trace_id /
		// span_id, so this line leads straight to the retained trace.
		s.log.WarnContext(ctx, "slow delivery stage",
			"stage", stage, "outcome", outcome, "elapsed", d.String())
	}
}
