package span

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gobad/internal/obs"
)

// testClock is a manually advanced wall clock.
type testClock struct{ now time.Time }

func newTestClock() *testClock {
	return &testClock{now: time.Unix(1_700_000_000, 0)}
}
func (c *testClock) Now() time.Time          { return c.now }
func (c *testClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestSpanParentLinksAndAttrs(t *testing.T) {
	clk := newTestClock()
	r := NewRecorder("test", withClock(clk.Now))

	ctx, root := r.Start(context.Background(), "root")
	root.SetAttr("channel", "nearby")
	clk.Advance(5 * time.Millisecond)
	_, child := r.Start(ctx, "child")
	clk.Advance(3 * time.Millisecond)
	child.End()
	root.End()

	traces := r.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if len(tr.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(tr.Spans))
	}
	// Snapshot sorts by start: root first.
	rootRec, childRec := tr.Spans[0], tr.Spans[1]
	if rootRec.Name != "root" || childRec.Name != "child" {
		t.Fatalf("span order wrong: %q, %q", rootRec.Name, childRec.Name)
	}
	if rootRec.ParentID != "" {
		t.Errorf("root has parent %q", rootRec.ParentID)
	}
	if childRec.ParentID != rootRec.SpanID {
		t.Errorf("child parent = %q, want %q", childRec.ParentID, rootRec.SpanID)
	}
	if childRec.TraceID != rootRec.TraceID {
		t.Errorf("trace IDs differ: %q vs %q", childRec.TraceID, rootRec.TraceID)
	}
	if rootRec.Attrs["channel"] != "nearby" {
		t.Errorf("attrs = %v", rootRec.Attrs)
	}
	if childRec.DurationNS != (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("child duration = %d", childRec.DurationNS)
	}
	if childRec.StartNano <= rootRec.StartNano {
		t.Errorf("child start %d not after root start %d", childRec.StartNano, rootRec.StartNano)
	}
	if rootRec.Service != "test" {
		t.Errorf("service = %q", rootRec.Service)
	}
}

func TestTailSamplingRetainsErrorAndSlow(t *testing.T) {
	clk := newTestClock()
	// Ratio 0: ordinary traces are discarded; only error and slow survive.
	r := NewRecorder("test", withClock(clk.Now),
		WithSampleRatio(0), WithSlowThreshold(100*time.Millisecond))

	_, fast := r.Start(context.Background(), "fast")
	clk.Advance(time.Millisecond)
	fast.End()

	_, failed := r.Start(context.Background(), "failed")
	failed.SetError(errors.New("boom"))
	clk.Advance(time.Millisecond)
	failed.End()

	_, slow := r.Start(context.Background(), "slow")
	clk.Advance(150 * time.Millisecond)
	slow.End()

	traces := r.Snapshot()
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2 (error + slow): %+v", len(traces), traces)
	}
	reasons := map[string]string{}
	for _, tr := range traces {
		reasons[tr.Spans[0].Name] = tr.Reason
	}
	if reasons["failed"] != ReasonError {
		t.Errorf("failed trace reason = %q", reasons["failed"])
	}
	if reasons["slow"] != ReasonSlow {
		t.Errorf("slow trace reason = %q", reasons["slow"])
	}
}

func TestTailSamplingDefaultKeepsAll(t *testing.T) {
	clk := newTestClock()
	r := NewRecorder("test", withClock(clk.Now))
	_, s := r.Start(context.Background(), "fast")
	s.End()
	traces := r.Snapshot()
	if len(traces) != 1 || traces[0].Reason != ReasonSampled {
		t.Fatalf("default ratio should retain: %+v", traces)
	}
}

func TestRingBounded(t *testing.T) {
	clk := newTestClock()
	r := NewRecorder("test", withClock(clk.Now), WithCapacity(4))
	var last string
	for i := 0; i < 10; i++ {
		_, s := r.Start(context.Background(), "s")
		last = s.Context().TraceIDString()
		s.End()
	}
	traces := r.Snapshot()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(traces))
	}
	// Newest trace must still be present; the ring evicts oldest-first.
	if traces[len(traces)-1].TraceID != last {
		t.Errorf("newest trace evicted; last in ring = %s, want %s",
			traces[len(traces)-1].TraceID, last)
	}
}

func TestActiveTraceEviction(t *testing.T) {
	clk := newTestClock()
	r := NewRecorder("test", withClock(clk.Now), WithMaxActive(2))
	_, a := r.Start(context.Background(), "a")
	_, b := r.Start(context.Background(), "b")
	_, c := r.Start(context.Background(), "c") // evicts a's buffer
	a.End()                                    // lands on a missing buffer: dropped
	b.End()
	c.End()
	traces := r.Snapshot()
	for _, tr := range traces {
		for _, sp := range tr.Spans {
			if sp.Name == "a" {
				t.Fatalf("evicted trace leaked into ring: %+v", tr)
			}
		}
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	e := r.export()
	if e.SpansDropped == 0 {
		t.Errorf("eviction not counted in SpansDropped")
	}
}

func TestStartRootIgnoresParent(t *testing.T) {
	r := NewRecorder("test")
	ctx, outer := r.Start(context.Background(), "outer")
	ctx2, fresh := r.StartRoot(ctx, "fresh")
	if fresh.Context().TraceID == outer.Context().TraceID {
		t.Fatalf("StartRoot reused the parent trace")
	}
	sc, ok := obs.SpanFromContext(ctx2)
	if !ok || sc.TraceID != fresh.Context().TraceID {
		t.Fatalf("StartRoot did not install the new trace in ctx")
	}
	fresh.End()
	outer.End()
	tr, err := r.Lookup(fresh.Context().TraceIDString())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Spans[0].ParentID != "" {
		t.Errorf("fresh root has parent %q", tr.Spans[0].ParentID)
	}
}

func TestNilRecorderAndSpanAreSafe(t *testing.T) {
	var r *Recorder
	ctx, s := r.Start(context.Background(), "noop")
	if s != nil {
		t.Fatalf("nil recorder returned non-nil span")
	}
	// Propagation still works: the ctx carries a fresh span context.
	if _, ok := obs.SpanFromContext(ctx); !ok {
		t.Fatalf("nil recorder did not install a span context")
	}
	s.SetAttr("k", "v")
	s.SetError(errors.New("x"))
	s.SetName("renamed")
	s.End()
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder snapshot = %v", got)
	}
	var buf bytes.Buffer
	if err := r.DumpJSON(&buf); err != nil {
		t.Fatalf("nil DumpJSON: %v", err)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
}

func TestEndIdempotentAndLateMutationIgnored(t *testing.T) {
	r := NewRecorder("test")
	_, s := r.Start(context.Background(), "once")
	s.End()
	s.SetAttr("late", "x")
	s.SetError(errors.New("late"))
	s.End()
	traces := r.Snapshot()
	if len(traces) != 1 || len(traces[0].Spans) != 1 {
		t.Fatalf("double End duplicated the span: %+v", traces)
	}
	if traces[0].Spans[0].Error != "" || traces[0].Spans[0].Attrs["late"] != "" {
		t.Errorf("post-End mutation applied: %+v", traces[0].Spans[0])
	}
}

func TestHandlerAndDumpJSON(t *testing.T) {
	clk := newTestClock()
	r := NewRecorder("badbroker", withClock(clk.Now))
	ctx, root := r.Start(context.Background(), "http /v1/subscriptions")
	_, child := r.Start(ctx, "cache.local_hit")
	clk.Advance(2 * time.Millisecond)
	child.End()
	root.End()

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	var e Export
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Service != "badbroker" || e.SpansStarted != 2 || len(e.Traces) != 1 {
		t.Fatalf("export = %+v", e)
	}
	if len(e.Traces[0].Spans) != 2 {
		t.Fatalf("trace spans = %+v", e.Traces[0])
	}

	var buf bytes.Buffer
	if err := r.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var e2 Export
	if err := json.Unmarshal(buf.Bytes(), &e2); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if e2.TracesRetained != 1 {
		t.Errorf("dump retained = %d", e2.TracesRetained)
	}
}

func TestSnapshotMergesRevisitedTrace(t *testing.T) {
	clk := newTestClock()
	r := NewRecorder("test", withClock(clk.Now))
	// First leg: webhook arrives, span opens and closes -> finalized.
	ctx, leg1 := r.Start(context.Background(), "broker.notify")
	clk.Advance(time.Millisecond)
	leg1.End()
	// Second leg, same trace, later: the client's retrieval.
	clk.Advance(10 * time.Millisecond)
	_, leg2 := r.Start(ctx, "broker.retrieve")
	clk.Advance(time.Millisecond)
	leg2.End()

	traces := r.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("revisited trace not merged: %d entries", len(traces))
	}
	if len(traces[0].Spans) != 2 {
		t.Fatalf("merged spans = %d, want 2", len(traces[0].Spans))
	}
	if traces[0].Spans[0].Name != "broker.notify" {
		t.Errorf("merge lost start ordering: %+v", traces[0].Spans)
	}
}

func TestCollectorCounters(t *testing.T) {
	r := NewRecorder("test", WithSampleRatio(0), WithSlowThreshold(0))
	_, s := r.Start(context.Background(), "discarded")
	s.End()
	reg := obs.NewRegistry()
	reg.MustRegister(r.Collector())
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"bad_trace_spans_started_total 1",
		"bad_traces_discarded_total 1",
		"bad_traces_retained_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestStagesObserveAndSlowLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	st := NewStages(50*time.Millisecond, obs.WrapLogger(logger))

	sc := obs.NewSpan()
	ctx := obs.ContextWithSpan(context.Background(), sc)
	st.Observe(ctx, StageRetrieve, OutcomePeerHop, 80*time.Millisecond) // slow
	st.Observe(ctx, StageWSWrite, "", time.Millisecond)                 // fast, outcome defaults

	reg := obs.NewRegistry()
	reg.MustRegister(st.Histogram())
	var expo bytes.Buffer
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	out := expo.String()
	if !strings.Contains(out, `bad_delivery_latency_seconds_count{outcome="peer_hop",stage="retrieve"} 1`) &&
		!strings.Contains(out, `bad_delivery_latency_seconds_count{stage="retrieve",outcome="peer_hop"} 1`) {
		t.Errorf("retrieve observation missing:\n%s", out)
	}
	if !strings.Contains(out, `stage="ws_write"`) || !strings.Contains(out, `outcome="none"`) {
		t.Errorf("ws_write/none observation missing:\n%s", out)
	}

	logs := buf.String()
	if !strings.Contains(logs, "slow delivery stage") {
		t.Fatalf("no slow log line:\n%s", logs)
	}
	if !strings.Contains(logs, sc.TraceIDString()) {
		t.Errorf("slow log line missing trace ID:\n%s", logs)
	}
	if strings.Contains(logs, "ws_write") {
		t.Errorf("fast observation logged:\n%s", logs)
	}

	var nilStages *Stages
	nilStages.Observe(ctx, StageRetrieve, OutcomeNone, time.Second) // must not panic
}
