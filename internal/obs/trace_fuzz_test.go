package obs

import (
	"strings"
	"testing"
)

// FuzzParseTraceparent drives the W3C traceparent parser with arbitrary
// header values. Properties: no panic, anything accepted has non-zero
// trace and span IDs (spec requirement), and an accepted context
// re-renders to a header that parses back to the identical context —
// the round trip a span makes crossing broker -> cluster and back.
func FuzzParseTraceparent(f *testing.F) {
	seeds := []string{
		"",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",       // canonical
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00",       // unsampled
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",       // zero trace ID
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",       // zero span ID
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",       // forbidden version
		"cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", // future version, longer
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", // version 00 must be exactly 55
		"00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01",       // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",          // missing flags
		"00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01",       // wrong separators
		"0-af7651916cd43dd8448eb211c80319c0-b7ad6b7169203331-011",       // shifted dashes
		strings.Repeat("0", 55),
		strings.Repeat("-", 60),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sc, ok := ParseTraceparent(s)
		if !ok {
			return
		}
		if !sc.Valid() {
			t.Fatalf("ParseTraceparent(%q) accepted an invalid context (zero ID): %+v", s, sc)
		}
		rendered := sc.Traceparent()
		back, ok := ParseTraceparent(rendered)
		if !ok {
			t.Fatalf("round trip: Traceparent() output %q rejected (from input %q)", rendered, s)
		}
		if back != sc {
			t.Fatalf("round trip: %q -> %+v -> %q -> %+v", s, sc, rendered, back)
		}
	})
}
