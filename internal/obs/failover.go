package obs

import (
	"sync/atomic"

	"gobad/internal/metrics"
)

// FailoverStats tallies the broker-failover pipeline. One bundle serves
// both halves of the path: brokers count resumes, gap backfills and drained
// sessions; clients count supervised reconnects and their latency. Fields
// the process doesn't touch simply stay zero in its exposition.
type FailoverStats struct {
	// Reconnects counts completed supervised reconnects (client side):
	// the notification socket died and the supervisor re-established a
	// session, on the same broker or a new one.
	Reconnects atomic.Uint64
	// Resumes counts frontend subscriptions re-attached with a resume
	// token (broker side).
	Resumes atomic.Uint64
	// Backfilled counts result objects range-fetched from the data
	// cluster to close a resume gap (broker side).
	Backfilled atomic.Uint64
	// DrainMigrated counts sessions handed a migrate close frame during a
	// graceful drain (broker side).
	DrainMigrated atomic.Uint64
	// RebalanceMigrated counts sessions handed a migrate close frame
	// because HRW placement moved them to another broker after a
	// membership change (broker side).
	RebalanceMigrated atomic.Uint64
	// ReconnectSeconds samples the client-observed reconnect latency:
	// connection loss to resumed subscriptions, in seconds.
	ReconnectSeconds metrics.Sampler
}

// Collector exports the failover tallies: four counters plus the
// client-side reconnect-latency summary.
func (s *FailoverStats) Collector() Collector {
	return CollectorFunc(func(emit func(Family)) {
		counter := func(name, help string, v uint64) {
			emit(Family{Name: name, Help: help, Type: CounterType,
				Points: []Point{{Value: float64(v)}}})
		}
		counter("bad_failover_reconnects_total",
			"Supervised client reconnects completed after a broker failure or restart.",
			s.Reconnects.Load())
		counter("bad_failover_resumes_total",
			"Frontend subscriptions re-attached with a resume token.",
			s.Resumes.Load())
		counter("bad_failover_backfilled_results_total",
			"Result objects range-fetched from the data cluster to close a resume gap.",
			s.Backfilled.Load())
		counter("bad_drain_migrated_sessions_total",
			"Sessions handed a migrate close frame during a graceful drain.",
			s.DrainMigrated.Load())
		counter("bad_rebalance_migrated_sessions_total",
			"Sessions migrated to their new HRW owner after a ring membership change.",
			s.RebalanceMigrated.Load())

		n := s.ReconnectSeconds.N()
		emit(Family{
			Name: "bad_failover_reconnect_seconds",
			Help: "Client-observed reconnect latency: connection loss to resumed subscriptions.",
			Type: SummaryType,
			Points: []Point{{Summary: &SummarySnapshot{
				Quantiles: map[float64]float64{
					0.5:  s.ReconnectSeconds.Quantile(0.5),
					0.95: s.ReconnectSeconds.Quantile(0.95),
					0.99: s.ReconnectSeconds.Quantile(0.99),
				},
				Count: uint64(n),
				Sum:   s.ReconnectSeconds.Mean() * float64(n),
			}}},
		})
	})
}
