package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TextMetrics is a parsed Prometheus text exposition: family metadata plus
// every sample row keyed by its full name-with-labels spelling, e.g.
// `http_requests_total{code="200",method="GET",route="/v1/stats"}`. It
// exists so tests (and small tools) can diff an exposition against another
// metric source without a Prometheus client dependency.
type TextMetrics struct {
	// Types maps family name to its declared # TYPE.
	Types map[string]MetricType
	// Help maps family name to its declared # HELP text.
	Help map[string]string
	// Samples maps each sample row (name plus label set, verbatim) to its
	// value.
	Samples map[string]float64
}

// Value returns the sample with the exact key, e.g. `up` or
// `foo{bar="baz"}`, and whether it exists.
func (m *TextMetrics) Value(key string) (float64, bool) {
	v, ok := m.Samples[key]
	return v, ok
}

// ParseText parses a text exposition as written by Registry.WriteText. It
// rejects rows it cannot split into a sample key and a float value, and
// sample names that lack a preceding # TYPE declaration.
func ParseText(r io.Reader) (*TextMetrics, error) {
	out := &TextMetrics{
		Types:   make(map[string]MetricType),
		Help:    make(map[string]string),
		Samples: make(map[string]float64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 {
				continue // free-form comment
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: line %d: malformed TYPE: %q", line, text)
				}
				out.Types[fields[2]] = MetricType(fields[3])
			case "HELP":
				help := ""
				if len(fields) == 4 {
					help = fields[3]
				}
				out.Help[fields[2]] = help
			}
			continue
		}
		// Sample row: `key value`, where key may contain spaces only inside
		// quoted label values — WriteText never emits those unescaped, so
		// splitting at the last space is safe.
		cut := strings.LastIndexByte(text, ' ')
		if cut <= 0 {
			return nil, fmt.Errorf("obs: line %d: malformed sample: %q", line, text)
		}
		key, valStr := text[:cut], text[cut+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q: %v", line, valStr, err)
		}
		base := key
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !declaredType(out.Types, base) {
			return nil, fmt.Errorf("obs: line %d: sample %q has no TYPE declaration", line, base)
		}
		if _, dup := out.Samples[key]; dup {
			return nil, fmt.Errorf("obs: line %d: duplicate sample %q", line, key)
		}
		out.Samples[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan exposition: %w", err)
	}
	return out, nil
}

// declaredType reports whether base (or the family it is derived from via
// the _bucket/_sum/_count suffixes) has a TYPE declaration.
func declaredType(types map[string]MetricType, base string) bool {
	if _, ok := types[base]; ok {
		return true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if fam, found := strings.CutSuffix(base, suffix); found {
			if _, ok := types[fam]; ok {
				return true
			}
		}
	}
	return false
}
