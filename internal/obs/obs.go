// Package obs is the observability layer shared by the broker, the data
// cluster and the BCS: a dependency-free Prometheus-text-format metric
// registry (counters, gauges, histograms, summaries and pull-style
// collectors), W3C-traceparent-compatible trace propagation through
// context.Context, slog helpers that stamp trace and request IDs onto log
// lines, and an opt-in debug mux with pprof.
//
// The paper's evaluation (Figures 3-5, 7) is all per-broker cache
// accounting; this package turns the same counters into a continuously
// scrapable /metrics surface so hit ratio, eviction pressure and fetch
// volume can be watched evolving on a live deployment instead of only as a
// one-shot /v1/stats snapshot.
//
// Everything here is stdlib-only; the module has zero dependencies and this
// package must keep it that way.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the exposition type of a metric family.
type MetricType string

// The exposition types this package emits.
const (
	CounterType   MetricType = "counter"
	GaugeType     MetricType = "gauge"
	HistogramType MetricType = "histogram"
	SummaryType   MetricType = "summary"
)

// Label is one name="value" pair on a metric point.
type Label struct {
	Name  string
	Value string
}

// HistogramSnapshot is a histogram's state at one scrape.
type HistogramSnapshot struct {
	// UpperBounds are the bucket upper bounds, ascending, excluding +Inf.
	UpperBounds []float64
	// CumCounts[i] counts observations <= UpperBounds[i] (cumulative, as
	// the text format requires).
	CumCounts []uint64
	// Count is the total number of observations (the +Inf bucket).
	Count uint64
	// Sum is the sum of all observed values.
	Sum float64
}

// SummarySnapshot is a quantile summary's state at one scrape.
type SummarySnapshot struct {
	// Quantiles maps q in (0,1) to its value, emitted sorted by q.
	Quantiles map[float64]float64
	Count     uint64
	Sum       float64
}

// Point is one sample row of a family: a scalar for counters/gauges, or a
// histogram/summary snapshot.
type Point struct {
	Labels  []Label
	Value   float64
	Hist    *HistogramSnapshot
	Summary *SummarySnapshot
}

// Family is one named metric with help, type and its points.
type Family struct {
	Name   string
	Help   string
	Type   MetricType
	Points []Point
}

// Collector is the pull-style source of metric families; Collect is called
// at scrape time, so collectors can read live state (cache manager shards,
// runtime memstats) without maintaining push-side bookkeeping.
type Collector interface {
	Collect(emit func(Family))
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(emit func(Family))

// Collect implements Collector.
func (f CollectorFunc) Collect(emit func(Family)) { f(emit) }

// Registry gathers collectors and renders them in Prometheus text format.
// The zero value is not ready; use NewRegistry.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
	names      map[string]MetricType // instrument names already registered
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]MetricType)}
}

// MustRegister adds collectors; it panics when an instrument collector
// re-uses an already registered name with a different type (a programmer
// error that would corrupt the exposition).
func (r *Registry) MustRegister(cs ...Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cs {
		if n, ok := c.(interface {
			metricName() string
			metricType() MetricType
		}); ok {
			name, typ := n.metricName(), n.metricType()
			if prev, dup := r.names[name]; dup && prev != typ {
				panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, prev, typ))
			}
			r.names[name] = typ
		}
		r.collectors = append(r.collectors, c)
	}
}

// Gather collects every family, merges same-named families (points append;
// the first collector's help/type win) and returns them sorted by name with
// deterministically ordered points.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	byName := make(map[string]*Family)
	var order []string
	for _, c := range collectors {
		c.Collect(func(f Family) {
			if existing, ok := byName[f.Name]; ok {
				existing.Points = append(existing.Points, f.Points...)
				return
			}
			cp := f
			byName[f.Name] = &cp
			order = append(order, f.Name)
		})
	}
	sort.Strings(order)
	out := make([]Family, 0, len(order))
	for _, name := range order {
		f := byName[name]
		sort.SliceStable(f.Points, func(i, j int) bool {
			return labelSignature(f.Points[i].Labels) < labelSignature(f.Points[j].Labels)
		})
		out = append(out, *f)
	}
	return out
}

// labelSignature renders labels for deterministic point ordering.
func labelSignature(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xfe')
	}
	return b.String()
}

// validName reports whether s is a legal metric or label name
// ([a-zA-Z_:][a-zA-Z0-9_:]* — label names may not contain ':' but none of
// ours do, so one check serves both).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func mustValidNames(metric string, labels []string) {
	if !validName(metric) {
		panic(fmt.Sprintf("obs: invalid metric name %q", metric))
	}
	for _, l := range labels {
		if !validName(l) || strings.Contains(l, ":") {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, metric))
		}
	}
}

// ---- scalar instruments ----------------------------------------------------

// Counter is a lock-free monotone float64 counter (IEEE-754 bits in an
// atomic word, CAS-updated). The zero value is ready.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter by v; negative or NaN deltas are ignored so the
// series stays monotone.
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a lock-free float64 gauge. The zero value is ready.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default histogram bucket upper bounds (seconds),
// matching the conventional Prometheus client defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram accumulates observations into cumulative buckets. Use
// NewHistogram; the zero value has no buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // per-bucket (non-cumulative), len == len(bounds)
	count  uint64
	sum    float64
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (nil selects DefBuckets). A trailing +Inf bound is implicit.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if i < len(h.counts) {
		h.counts[i]++
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Snapshot returns the cumulative-bucket view the text format needs.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return &HistogramSnapshot{
		UpperBounds: h.bounds,
		CumCounts:   cum,
		Count:       h.count,
		Sum:         h.sum,
	}
}

// ---- named vectors (instruments that are collectors) -----------------------

// vec is the shared child table of the labelled instrument vectors.
type vec[T any] struct {
	name   string
	help   string
	labels []string

	mu       sync.Mutex
	children map[string]*child[T]
	order    []string
	make     func() *T
}

type child[T any] struct {
	labelValues []string
	inst        *T
}

func newVec[T any](name, help string, labels []string, mk func() *T) *vec[T] {
	mustValidNames(name, labels)
	return &vec[T]{
		name: name, help: help, labels: labels,
		children: make(map[string]*child[T]),
		make:     mk,
	}
}

func (v *vec[T]) with(labelValues ...string) *T {
	if len(labelValues) != len(v.labels) {
		panic(fmt.Sprintf("obs: metric %q expects %d label values, got %d",
			v.name, len(v.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &child[T]{labelValues: append([]string(nil), labelValues...), inst: v.make()}
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return c.inst
}

func (v *vec[T]) points(point func(c *child[T]) Point) []Point {
	v.mu.Lock()
	defer v.mu.Unlock()
	pts := make([]Point, 0, len(v.order))
	for _, key := range v.order {
		c := v.children[key]
		p := point(c)
		p.Labels = makeLabels(v.labels, c.labelValues)
		pts = append(pts, p)
	}
	return pts
}

func makeLabels(names, values []string) []Label {
	ls := make([]Label, len(names))
	for i := range names {
		ls[i] = Label{Name: names[i], Value: values[i]}
	}
	return ls
}

// CounterVec is a labelled counter family. With zero label names it acts as
// a single named counter via With().
type CounterVec struct{ v *vec[Counter] }

// NewCounterVec returns a counter family; register it on a Registry.
func NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{newVec(name, help, labelNames, func() *Counter { return new(Counter) })}
}

// With returns (creating on first use) the child for the label values.
func (cv *CounterVec) With(labelValues ...string) *Counter { return cv.v.with(labelValues...) }

// Collect implements Collector.
func (cv *CounterVec) Collect(emit func(Family)) {
	emit(Family{
		Name: cv.v.name, Help: cv.v.help, Type: CounterType,
		Points: cv.v.points(func(c *child[Counter]) Point { return Point{Value: c.inst.Value()} }),
	})
}

func (cv *CounterVec) metricName() string     { return cv.v.name }
func (cv *CounterVec) metricType() MetricType { return CounterType }

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ v *vec[Gauge] }

// NewGaugeVec returns a gauge family; register it on a Registry.
func NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{newVec(name, help, labelNames, func() *Gauge { return new(Gauge) })}
}

// With returns (creating on first use) the child for the label values.
func (gv *GaugeVec) With(labelValues ...string) *Gauge { return gv.v.with(labelValues...) }

// Collect implements Collector.
func (gv *GaugeVec) Collect(emit func(Family)) {
	emit(Family{
		Name: gv.v.name, Help: gv.v.help, Type: GaugeType,
		Points: gv.v.points(func(c *child[Gauge]) Point { return Point{Value: c.inst.Value()} }),
	})
}

func (gv *GaugeVec) metricName() string     { return gv.v.name }
func (gv *GaugeVec) metricType() MetricType { return GaugeType }

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ v *vec[Histogram] }

// NewHistogramVec returns a histogram family over the given bounds (nil
// selects DefBuckets); register it on a Registry.
func NewHistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	return &HistogramVec{newVec(name, help, labelNames, func() *Histogram { return NewHistogram(b) })}
}

// With returns (creating on first use) the child for the label values.
func (hv *HistogramVec) With(labelValues ...string) *Histogram { return hv.v.with(labelValues...) }

// Collect implements Collector.
func (hv *HistogramVec) Collect(emit func(Family)) {
	emit(Family{
		Name: hv.v.name, Help: hv.v.help, Type: HistogramType,
		Points: hv.v.points(func(c *child[Histogram]) Point { return Point{Hist: c.inst.Snapshot()} }),
	})
}

func (hv *HistogramVec) metricName() string     { return hv.v.name }
func (hv *HistogramVec) metricType() MetricType { return HistogramType }

// ---- func collectors -------------------------------------------------------

// GaugeFunc exposes fn's value as an unlabelled gauge read at scrape time.
func GaugeFunc(name, help string, fn func() float64) Collector {
	mustValidNames(name, nil)
	return CollectorFunc(func(emit func(Family)) {
		emit(Family{Name: name, Help: help, Type: GaugeType, Points: []Point{{Value: fn()}}})
	})
}

// CounterFunc exposes fn's value as an unlabelled counter read at scrape
// time; fn must be monotone.
func CounterFunc(name, help string, fn func() float64) Collector {
	mustValidNames(name, nil)
	return CollectorFunc(func(emit func(Family)) {
		emit(Family{Name: name, Help: help, Type: CounterType, Points: []Point{{Value: fn()}}})
	})
}
