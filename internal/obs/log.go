package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// contextHandler decorates a slog.Handler so every record emitted through a
// context-carrying call (InfoContext, WarnContext, ...) is stamped with the
// trace, span and request IDs the httpx middleware put into the context.
// One notification delivery then shares one trace_id across the broker's
// and the data cluster's log lines.
type contextHandler struct{ inner slog.Handler }

// Enabled implements slog.Handler.
func (h contextHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler.
func (h contextHandler) Handle(ctx context.Context, r slog.Record) error {
	if sc, ok := SpanFromContext(ctx); ok {
		r.AddAttrs(
			slog.String("trace_id", sc.TraceIDString()),
			slog.String("span_id", sc.SpanIDString()),
		)
	}
	if id := RequestIDFromContext(ctx); id != "" {
		r.AddAttrs(slog.String("request_id", id))
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs implements slog.Handler.
func (h contextHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return contextHandler{h.inner.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler.
func (h contextHandler) WithGroup(name string) slog.Handler {
	return contextHandler{h.inner.WithGroup(name)}
}

// NewLogger returns a JSON structured logger writing to w at the given
// level, trace-aware via the context handler, with a constant service
// attribute identifying the emitting process (badbroker, badcluster,
// badbcs).
func NewLogger(w io.Writer, level slog.Leveler, service string) *slog.Logger {
	base := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	l := slog.New(contextHandler{base})
	if service != "" {
		l = l.With(slog.String("service", service))
	}
	return l
}

// WrapLogger makes an existing logger trace-aware (no-op if it already is).
func WrapLogger(l *slog.Logger) *slog.Logger {
	if l == nil {
		l = slog.Default()
	}
	if _, ok := l.Handler().(contextHandler); ok {
		return l
	}
	return slog.New(contextHandler{l.Handler()})
}

// NopLogger returns a logger that discards everything; components use it as
// the default so logging stays opt-in for tests and library embedders.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// ParseLevel maps "debug", "info", "warn", "error" (case-insensitive) to a
// slog level for -log-level flags.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}
