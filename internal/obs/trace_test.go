package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpan()
	if !sc.Valid() {
		t.Fatal("NewSpan should be valid")
	}
	header := sc.Traceparent()
	if len(header) != 55 || !strings.HasPrefix(header, "00-") {
		t.Fatalf("header = %q", header)
	}
	back, ok := ParseTraceparent(header)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", header)
	}
	if back != sc {
		t.Errorf("round trip: got %+v, want %+v", back, sc)
	}
}

func TestChildKeepsTraceID(t *testing.T) {
	root := NewSpan()
	child := root.Child()
	if child.TraceID != root.TraceID {
		t.Error("child must keep the trace ID")
	}
	if child.SpanID == root.SpanID {
		t.Error("child must get a fresh span ID")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("example header should parse: %q", valid)
	}
	bad := []string{
		"",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",      // missing flags
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // forbidden version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",   // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",   // zero span id
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x", // trailing data on version 00
		"00-ZZf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // non-hex
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) should fail", h)
		}
	}
}

func TestContextCarriage(t *testing.T) {
	ctx := context.Background()
	if _, ok := SpanFromContext(ctx); ok {
		t.Error("empty context should carry no span")
	}
	sc := NewSpan()
	ctx = ContextWithSpan(ctx, sc)
	ctx = ContextWithRequestID(ctx, "req-1")
	got, ok := SpanFromContext(ctx)
	if !ok || got != sc {
		t.Errorf("SpanFromContext = %+v, %v", got, ok)
	}
	if id := RequestIDFromContext(ctx); id != "req-1" {
		t.Errorf("RequestIDFromContext = %q", id)
	}
}

func TestLoggerStampsTraceAttrs(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, slog.LevelDebug, "test-svc")
	sc := NewSpan()
	ctx := ContextWithSpan(context.Background(), sc)
	ctx = ContextWithRequestID(ctx, "req-42")
	logger.InfoContext(ctx, "hello", slog.Int("n", 1))

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if line["trace_id"] != sc.TraceIDString() {
		t.Errorf("trace_id = %v, want %s", line["trace_id"], sc.TraceIDString())
	}
	if line["span_id"] != sc.SpanIDString() {
		t.Errorf("span_id = %v, want %s", line["span_id"], sc.SpanIDString())
	}
	if line["request_id"] != "req-42" {
		t.Errorf("request_id = %v", line["request_id"])
	}
	if line["service"] != "test-svc" {
		t.Errorf("service = %v", line["service"])
	}
}

func TestLoggerWithoutContextAttrs(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, slog.LevelInfo, "svc")
	logger.Info("plain")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if _, has := line["trace_id"]; has {
		t.Error("no trace in context: line must not carry trace_id")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("chatty"); err == nil {
		t.Error("unknown level should error")
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 {
		t.Errorf("request ids: %q, %q", a, b)
	}
}
