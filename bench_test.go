package gobad

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its artifact at a reduced population scale (the
// full Table II scale is available through cmd/badrepro -scale 1) and
// reports the headline numbers via b.ReportMetric so `go test -bench=.`
// output doubles as a results table.
//
// Scale note: BENCH_SCALE below divides the Table II population; budgets
// scale with it, so the comparative shapes (who wins, by what factor,
// where the crossovers fall) are preserved — see EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gobad/internal/aql"
	"gobad/internal/core"
	"gobad/internal/experiments"
	"gobad/internal/sim"
	"gobad/internal/trace"
	"gobad/internal/workload"
)

// benchScale divides the Table II population for the simulation figures.
const benchScale = 50

// benchBudgetIdx selects the mid-range cache size from the scaled axis.
const benchBudgetIdx = 2

func benchBase(b *testing.B) sim.Config {
	b.Helper()
	cfg := experiments.DefaultSimBase(benchScale)
	cfg.Seed = 1
	return cfg
}

func runSimCell(b *testing.B, p core.Policy, budget int64) sim.Result {
	b.Helper()
	cfg := benchBase(b)
	cfg.Policy = p
	cfg.CacheBudget = budget
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1PolicyDecisions measures victim selection across the
// Table I policies: a full Put+evict cycle against a populated manager.
func BenchmarkTable1PolicyDecisions(b *testing.B) {
	for _, p := range core.AllPolicies() {
		b.Run(p.Name(), func(b *testing.B) {
			mgr, err := core.NewManager(core.Config{
				Policy: p,
				Budget: 1 << 20,
				Fetcher: core.FetcherFunc(func(context.Context, string, time.Duration, time.Duration, bool) ([]*core.Object, error) {
					return nil, nil
				}),
			})
			if err != nil {
				b.Fatal(err)
			}
			// 64 caches with 4 subscribers each.
			for i := 0; i < 64; i++ {
				id := fmt.Sprintf("c%02d", i)
				for s := 0; s < 4; s++ {
					mgr.Subscribe(id, fmt.Sprintf("s%d", s), 0)
				}
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				id := fmt.Sprintf("c%02d", n%64)
				obj := &core.Object{
					ID:        fmt.Sprintf("o%d", n),
					Timestamp: time.Duration(n+1) * time.Millisecond,
					Size:      32 << 10,
				}
				if err := mgr.Put(id, obj, time.Duration(n)*time.Millisecond); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2SimulationSetup measures constructing and warming a
// simulator with the Table II settings (population build + first virtual
// minutes).
func BenchmarkTable2SimulationSetup(b *testing.B) {
	cfg := benchBase(b)
	cfg.Policy = core.LSC{}
	cfg.Duration = 5 * time.Minute
	cfg.JoinWindow = time.Minute
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFig3 runs the simulation comparison once per iteration and reports
// the requested per-policy metric.
func benchSimFigure(b *testing.B, metric func(sim.Result) float64, unit string) {
	b.Helper()
	budget := experiments.DefaultBudgets(benchBase(b))[benchBudgetIdx]
	policies := core.AllPolicies()
	results := make(map[string]float64, len(policies))
	for n := 0; n < b.N; n++ {
		for _, p := range policies {
			results[p.Name()] = metric(runSimCell(b, p, budget))
		}
	}
	for name, v := range results {
		b.ReportMetric(v, name+"_"+unit)
	}
}

// BenchmarkFig3HitRatio regenerates Fig. 3(a)'s mid-budget column.
func BenchmarkFig3HitRatio(b *testing.B) {
	benchSimFigure(b, func(r sim.Result) float64 { return r.Metrics.HitRatio }, "hit")
}

// BenchmarkFig3HitByte regenerates Fig. 3(b)'s mid-budget column.
func BenchmarkFig3HitByte(b *testing.B) {
	benchSimFigure(b, func(r sim.Result) float64 { return r.Metrics.HitBytes / (1 << 20) }, "hitMB")
}

// BenchmarkFig3MissByte regenerates Fig. 3(c)'s mid-budget column.
func BenchmarkFig3MissByte(b *testing.B) {
	benchSimFigure(b, func(r sim.Result) float64 { return r.Metrics.MissBytes / (1 << 20) }, "missMB")
}

// BenchmarkFig4Fetch regenerates Fig. 4(a)'s mid-budget column.
func BenchmarkFig4Fetch(b *testing.B) {
	benchSimFigure(b, func(r sim.Result) float64 { return r.Metrics.FetchBytes / (1 << 20) }, "fetchMB")
}

// BenchmarkFig4Latency regenerates Fig. 4(b)'s mid-budget column.
func BenchmarkFig4Latency(b *testing.B) {
	benchSimFigure(b, func(r sim.Result) float64 { return r.Metrics.MeanLatency }, "lat_s")
}

// BenchmarkFig4HoldingTime regenerates Fig. 4(c)'s mid-budget column.
func BenchmarkFig4HoldingTime(b *testing.B) {
	benchSimFigure(b, func(r sim.Result) float64 { return r.Metrics.HoldingTime }, "hold_s")
}

// BenchmarkFig5CacheSize regenerates Fig. 5(a): time-averaged and maximum
// cache sizes plus the sum(rho*T) check for the TTL policy.
func BenchmarkFig5CacheSize(b *testing.B) {
	budget := experiments.DefaultBudgets(benchBase(b))[benchBudgetIdx]
	var ttlAvg, ttlMax, rhoT, lscMax float64
	for n := 0; n < b.N; n++ {
		ttl := runSimCell(b, core.TTL{}, budget)
		lsc := runSimCell(b, core.LSC{}, budget)
		ttlAvg = ttl.Metrics.AvgCacheSize / (1 << 20)
		ttlMax = ttl.Metrics.MaxCacheSize / (1 << 20)
		rhoT = ttl.RhoTTLSum / (1 << 20)
		lscMax = lsc.Metrics.MaxCacheSize / (1 << 20)
	}
	b.ReportMetric(float64(budget)/(1<<20), "budget_MB")
	b.ReportMetric(ttlAvg, "TTL_avg_MB")
	b.ReportMetric(ttlMax, "TTL_max_MB")
	b.ReportMetric(rhoT, "TTL_rhoT_MB")
	b.ReportMetric(lscMax, "LSC_max_MB")
}

// BenchmarkFig5HoldingVsTTL regenerates Fig. 5(b): how closely holding
// times track assigned TTLs under the TTL policy vs LSC.
func BenchmarkFig5HoldingVsTTL(b *testing.B) {
	budget := experiments.DefaultBudgets(benchBase(b))[benchBudgetIdx]
	var ttlGap float64
	var pts int
	for n := 0; n < b.N; n++ {
		res := runSimCell(b, core.TTL{}, budget)
		cell := experiments.Cell{Policy: "TTL", Budget: budget, PerCache: res.PerCache}
		points := experiments.Fig5B(cell)
		ttlGap = experiments.HoldingTTLCorrelation(points)
		pts = len(points)
	}
	b.ReportMetric(ttlGap, "TTL_rel_gap")
	b.ReportMetric(float64(pts), "caches")
}

// prototype trace shared across the Fig. 7 benchmarks.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	gen := trace.DefaultGenConfig()
	gen.Subscribers = 150
	gen.UniqueSubscriptions = 900
	gen.Duration = 30 * time.Minute
	tr, err := trace.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func benchPrototype(b *testing.B, metric func(experiments.PrototypeCell) float64, unit string) {
	b.Helper()
	tr := benchTrace(b)
	budgets := []int64{128 << 10, 1 << 20}
	var sweep *experiments.PrototypeSweep
	for n := 0; n < b.N; n++ {
		var err error
		sweep, err = experiments.RunPrototypeSweep(experiments.PrototypeSweepConfig{
			Trace:   tr,
			Budgets: budgets,
			Seed:    1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for name, byBudget := range sweep.Cells {
		b.ReportMetric(metric(byBudget[budgets[0]]), name+"_"+unit)
	}
}

// BenchmarkFig7HitRatio regenerates Fig. 7(a) at the small cache size.
func BenchmarkFig7HitRatio(b *testing.B) {
	benchPrototype(b, func(c experiments.PrototypeCell) float64 { return c.HitRatio }, "hit")
}

// BenchmarkFig7Latency regenerates Fig. 7(b).
func BenchmarkFig7Latency(b *testing.B) {
	benchPrototype(b, func(c experiments.PrototypeCell) float64 { return c.MeanLatency }, "lat_s")
}

// BenchmarkFig7BytesFetched regenerates Fig. 7(c).
func BenchmarkFig7BytesFetched(b *testing.B) {
	benchPrototype(b, func(c experiments.PrototypeCell) float64 { return c.FetchedBytes / (1 << 20) }, "fetchMB")
}

// BenchmarkTable3ChannelMatching measures the Table III emergency channel
// catalog end-to-end: compile every channel and match a publication stream
// against live subscriptions in the data cluster engine.
func BenchmarkTable3ChannelMatching(b *testing.B) {
	rig, err := experiments.NewRig(experiments.RigConfig{
		Policy:      core.LSC{},
		CacheBudget: 1 << 20,
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// One subscriber per catalog channel.
	for i, spec := range workload.EmergencyChannels() {
		params := make([]any, len(spec.Params))
		for j, p := range spec.Params {
			switch p {
			case "lat":
				params[j] = workload.CityCenter.Lat
			case "lon":
				params[j] = workload.CityCenter.Lon
			case "radiusKm":
				params[j] = 5.0
			case "etype":
				params[j] = "fire"
			default:
				params[j] = 1.0
			}
		}
		if err := rig.Subscribe(fmt.Sprintf("bench-sub-%d", i), spec.Name, params); err != nil {
			b.Fatal(err)
		}
		if err := rig.Login(fmt.Sprintf("bench-sub-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		rig.AdvanceTo(time.Duration(n+1) * time.Second)
		err := rig.Publish("EmergencyReports", map[string]any{
			"etype": "fire", "severity": 3.0,
			"location": map[string]any{
				"lat": workload.CityCenter.Lat, "lon": workload.CityCenter.Lon,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAQLEvaluate measures predicate evaluation, the data cluster's
// per-publication matching cost.
func BenchmarkAQLEvaluate(b *testing.B) {
	q, err := aql.ParseQuery(
		"select * from EmergencyReports r where r.etype = $etype and " +
			"geo_distance(r.location.lat, r.location.lon, $lat, $lon) <= $radiusKm")
	if err != nil {
		b.Fatal(err)
	}
	records := []map[string]any{{
		"etype": "fire", "severity": 3.0,
		"location": map[string]any{"lat": 33.69, "lon": -117.82},
	}}
	params := map[string]any{
		"etype": "fire", "lat": 33.68, "lon": -117.83, "radiusKm": 5.0,
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := aql.RunQuery(q, records, params); err != nil {
			b.Fatal(err)
		}
	}
}
