// Emergency: the Section VI city-emergency usecase as a real distributed
// deployment on loopback HTTP — a data cluster node, a Broker Coordination
// Service, a caching broker (all three as real HTTP servers), and BAD
// clients that discover the broker through the BCS, subscribe to Table III
// parameterized channels, and receive ENRICHED notifications (emergency
// reports with nearby shelters attached) over WebSockets.
//
// Run with:
//
//	go run ./examples/emergency
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"gobad/internal/bcs"
	"gobad/internal/bdms"
	"gobad/internal/broker"
	"gobad/internal/client"
	"gobad/internal/core"
	"gobad/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// serve starts an HTTP server on a random loopback port and returns its
// base URL.
func serve(handler http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

func run() error {
	// --- Data cluster node -------------------------------------------
	notifier := bdms.NewWebhookNotifier(4, 256, nil)
	defer notifier.Close()
	cluster := bdms.NewCluster(bdms.WithNodes(3), bdms.WithNotifier(notifier))
	if err := cluster.CreateDataset("EmergencyReports", bdms.Schema{}); err != nil {
		return err
	}
	if err := cluster.CreateDataset("Shelters", bdms.Schema{}); err != nil {
		return err
	}
	// The continuous alert channel, ENRICHED with shelters within 10 km
	// of each reported emergency — the "enriched notifications" of the
	// paper's title: one notification combines data from two datasets.
	if err := cluster.DefineChannel(bdms.ChannelDef{
		Name:   "EnrichedAlerts",
		Params: []string{"etype"},
		Body:   "select * from EmergencyReports r where r.etype = $etype",
		Enrich: []bdms.EnrichSpec{{
			Name:  "nearby_shelters",
			Query: "select * from Shelters s where geo_distance(s.location.lat, s.location.lon, $lat, $lon) <= 10 and s.capacity > 0",
			Bind:  map[string]string{"lat": "location.lat", "lon": "location.lon"},
		}},
	}); err != nil {
		return err
	}
	// Also register the repetitive Table III channels.
	for _, spec := range workload.EmergencyChannels() {
		if err := cluster.DefineChannel(bdms.ChannelDef{
			Name: spec.Name, Params: spec.Params, Body: spec.Body, Period: spec.Period,
		}); err != nil {
			return err
		}
	}
	// Shelter reference data.
	rng := rand.New(rand.NewSource(7))
	for _, s := range workload.ShelterCatalog(rng, 12) {
		if _, err := cluster.Ingest("Shelters", map[string]any{
			"shelter_id": s.ShelterID, "name": s.Name, "capacity": s.Capacity,
			"location": map[string]any{"lat": s.Location.Lat, "lon": s.Location.Lon},
		}); err != nil {
			return err
		}
	}
	clusterURL, stopCluster, err := serve(bdms.NewServer(cluster).Handler())
	if err != nil {
		return err
	}
	defer stopCluster()
	fmt.Println("data cluster:", clusterURL)

	// --- Broker Coordination Service ---------------------------------
	bcsURL, stopBCS, err := serve(bcs.NewServer(bcs.NewService()).Handler())
	if err != nil {
		return err
	}
	defer stopBCS()
	fmt.Println("BCS:        ", bcsURL)

	// --- Broker -------------------------------------------------------
	brokerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	brokerURL := "http://" + brokerLn.Addr().String()
	b, err := broker.New(broker.Config{
		ID:          "edge-broker-1",
		Backend:     bdms.NewClient(clusterURL, nil),
		CallbackURL: brokerURL + "/v1/callbacks/results",
		Policy:      core.LSC{},
		CacheBudget: 4 << 20,
	})
	if err != nil {
		return err
	}
	brokerSrv := &http.Server{Handler: broker.NewServer(b).Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = brokerSrv.Serve(brokerLn) }()
	defer brokerSrv.Close()
	reg, err := broker.RegisterWithBCS(b, bcs.NewClient(bcsURL, nil), brokerURL, time.Second)
	if err != nil {
		return err
	}
	defer reg.Close()
	fmt.Println("broker:     ", brokerURL)

	// --- Subscribers --------------------------------------------------
	// They discover the broker via the BCS and listen on WebSockets.
	subscribers := []string{"alice", "bob"}
	clients := make(map[string]*client.Client, len(subscribers))
	for _, name := range subscribers {
		c, err := client.New(client.Config{
			Subscriber: name,
			BCS:        bcs.NewClient(bcsURL, nil),
		})
		if err != nil {
			return err
		}
		defer c.Close()
		if err := c.Listen(); err != nil {
			return err
		}
		if _, err := c.Subscribe("EnrichedAlerts", []any{"flood"}); err != nil {
			return err
		}
		clients[name] = c
	}
	fmt.Printf("subscribed: %d frontend -> %d backend subscription(s)\n\n",
		b.NumFrontendSubs(), b.NumBackendSubs())

	// --- A publisher reports a flood ----------------------------------
	if _, err := bdms.NewClient(clusterURL, nil).Ingest("EmergencyReports", map[string]any{
		"etype": "flood", "severity": 5.0,
		"location": map[string]any{"lat": workload.CityCenter.Lat, "lon": workload.CityCenter.Lon},
		"message":  "flash flooding downtown",
	}); err != nil {
		return err
	}

	// --- Each subscriber gets a push and retrieves the enriched result.
	for _, name := range subscribers {
		c := clients[name]
		select {
		case n := <-c.Notifications():
			items, err := c.GetResults(n.FrontendSub)
			if err != nil {
				return err
			}
			for _, it := range items {
				row := it.Rows[0]
				shelters, _ := row["nearby_shelters"].([]any)
				src := "cluster"
				if it.FromCache {
					src = "broker cache"
				}
				fmt.Printf("%s <- %q (severity %v) with %d nearby shelters [served from %s]\n",
					name, row["message"], row["severity"], len(shelters), src)
			}
		case <-time.After(10 * time.Second):
			return fmt.Errorf("%s never received a notification", name)
		}
	}

	fmt.Printf("\nbroker cache hit ratio: %.2f (the second retrieval shares alice's cached copy)\n",
		b.Stats().HitRatio())
	return nil
}
