// Analytics: the "big data management" side of Big Active Data — durable
// ingestion with write-ahead logging and crash recovery, standing digest
// channels built on AQL aggregation (count/sum/avg/min/max + group by),
// and ad-hoc analytical queries over the stored publications.
//
// Run with:
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gobad/internal/bdms"
	"gobad/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// manualClock lets the example fire the repetitive digest deterministically.
type manualClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *manualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func run() error {
	dir, err := os.MkdirTemp("", "gobad-analytics-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "cluster.wal")

	// --- Phase 1: a durable cluster ingests a burst of emergencies. ----
	clk := &manualClock{}
	wal, err := bdms.CreateWAL(walPath)
	if err != nil {
		return err
	}
	cluster := bdms.NewCluster(bdms.WithClock(clk.Now), bdms.WithWAL(wal))
	if err := cluster.CreateDataset("EmergencyReports", bdms.Schema{}); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	gen := workload.NewReportGenerator(rng, workload.Uniform{Lo: 200, Hi: 400})
	for i := 0; i < 200; i++ {
		clk.Advance(time.Second)
		rep := gen.Next()
		if _, err := cluster.Ingest("EmergencyReports", map[string]any{
			"etype": rep.EType, "severity": rep.Severity,
			"location": map[string]any{"lat": rep.Location.Lat, "lon": rep.Location.Lon},
		}); err != nil {
			return err
		}
	}
	fmt.Printf("ingested %d publications (logged to %s)\n",
		cluster.Dataset("EmergencyReports").Len(), filepath.Base(walPath))
	if err := wal.Close(); err != nil {
		return err
	}

	// --- Phase 2: "crash" and recover from the log. --------------------
	recovered, err := bdms.OpenWAL(walPath, bdms.WithClock(clk.Now))
	if err != nil {
		return err
	}
	fmt.Printf("recovered %d publications after restart\n",
		recovered.Dataset("EmergencyReports").Len())

	// --- Phase 3: a standing digest channel over the recovered data. ---
	if err := recovered.DefineChannel(bdms.ChannelDef{
		Name:   "SeverityDigest",
		Params: []string{"min"},
		Body: "select r.etype as etype, count(*) as reports, avg(r.severity) as mean_severity " +
			"from EmergencyReports r where r.severity >= $min " +
			"group by r.etype order by reports desc",
		Period: time.Minute,
	}); err != nil {
		return err
	}
	sub, err := recovered.Subscribe("SeverityDigest", []any{3.0}, "")
	if err != nil {
		return err
	}
	// New publications arrive, then the digest period elapses.
	for i := 0; i < 50; i++ {
		clk.Advance(time.Second)
		rep := gen.Next()
		if _, err := recovered.Ingest("EmergencyReports", map[string]any{
			"etype": rep.EType, "severity": rep.Severity,
			"location": map[string]any{"lat": rep.Location.Lat, "lon": rep.Location.Lon},
		}); err != nil {
			return err
		}
	}
	clk.Advance(time.Minute)
	recovered.RunRepetitiveDue()
	results, err := recovered.Results(sub, 0, clk.Now(), true)
	if err != nil {
		return err
	}
	fmt.Println("\nSeverityDigest (severe emergencies since subscription, by type):")
	for _, res := range results {
		for _, row := range res.Rows {
			fmt.Printf("  %-10v %3.0f reports, mean severity %.2f\n",
				row["etype"], row["reports"], row["mean_severity"])
		}
	}

	// --- Phase 4: ad-hoc analytics over everything stored. -------------
	rows, err := recovered.Query(
		"select r.etype as etype, count(*) as total, max(r.severity) as worst "+
			"from EmergencyReports r group by r.etype order by total desc limit 3",
		nil)
	if err != nil {
		return err
	}
	fmt.Println("\nad-hoc query — top 3 emergency types over the full history:")
	for _, row := range rows {
		fmt.Printf("  %-10v %3.0f total, worst severity %.0f\n",
			row["etype"], row["total"], row["worst"])
	}
	return nil
}
