// Simulation: runs the Section V discrete-event simulator head-to-head for
// every caching policy at one cache size and prints a comparison table —
// the quickest way to see the paper's main result (TTL > LSC > LRU; EXP
// and the size-normalized variants in between; eviction policies bounded
// by the budget while TTL exceeds it in exchange for the best hit ratio).
//
// Run with:
//
//	go run ./examples/simulation [-scale 25] [-budget-mb 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"gobad/internal/core"
	"gobad/internal/experiments"
	"gobad/internal/sim"
)

func main() {
	scale := flag.Float64("scale", 25, "population down-scale factor (1 = full Table II)")
	budgetMB := flag.Int64("budget-mb", 0, "cache budget in MB (0 = scaled default)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if err := run(*scale, *budgetMB, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(scale float64, budgetMB, seed int64) error {
	base := experiments.DefaultSimBase(scale)
	base.Seed = seed
	budget := base.CacheBudget
	if budgetMB > 0 {
		budget = budgetMB << 20
	}
	fmt.Printf("simulating %d subscribers x %d subscriptions over %d backend subscriptions for %v (budget %dMB)\n\n",
		base.Subscribers, base.SubsPerSubscriber, base.BackendSubs, base.Duration, budget>>20)

	fmt.Printf("%-6s %9s %10s %10s %10s %10s %11s %11s\n",
		"policy", "hit", "hitMB", "missMB", "lat(s)", "hold(s)", "avgszMB", "maxszMB")
	policies := append([]core.Policy{core.NC{}}, core.AllPolicies()...)
	for _, p := range policies {
		cfg := base
		cfg.Policy = p
		cfg.CacheBudget = budget
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		m := res.Metrics
		fmt.Printf("%-6s %9.3f %10.0f %10.0f %10.3f %10.1f %11.2f %11.2f\n",
			p.Name(), m.HitRatio, m.HitBytes/(1<<20), m.MissBytes/(1<<20),
			m.MeanLatency, m.HoldingTime,
			m.AvgCacheSize/(1<<20), m.MaxCacheSize/(1<<20))
	}
	fmt.Println("\nexpected shape: TTL tops the hit ratio and holds objects longest, but its")
	fmt.Println("max size exceeds the budget; eviction policies stay within it; NC misses everything.")
	return nil
}
