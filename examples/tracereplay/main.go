// Tracereplay: generates a Section VI activity trace (login/logout/
// subscribe/unsubscribe/publish) and replays it against the in-process
// prototype rig under two different caching policies, printing how the
// same workload fares under each — the Fig. 7 methodology in miniature.
// Optionally writes the generated trace to a JSONL file for badtrace /
// external tooling.
//
// Run with:
//
//	go run ./examples/tracereplay [-subscribers 100] [-out trace.jsonl]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"gobad/internal/bdms"
	"gobad/internal/broker"
	"gobad/internal/core"
	"gobad/internal/experiments"
	"gobad/internal/liveplay"
	"gobad/internal/trace"
	"gobad/internal/workload"
)

func main() {
	subscribers := flag.Int("subscribers", 100, "subscriber population")
	duration := flag.Duration("duration", 20*time.Minute, "trace duration (virtual)")
	budgetKB := flag.Int64("budget-kb", 256, "cache budget in KB")
	out := flag.String("out", "", "also write the trace as JSONL to this file")
	seed := flag.Int64("seed", 1, "random seed")
	live := flag.Bool("live", false, "replay against a real loopback HTTP deployment (wall-clock, sped up) instead of the virtual-time rig")
	speedup := flag.Float64("speedup", 60, "trace-time compression for -live playback")
	flag.Parse()
	if *live {
		if err := runLive(*subscribers, *duration, *budgetKB, *seed, *speedup); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*subscribers, *duration, *budgetKB, *out, *seed); err != nil {
		log.Fatal(err)
	}
}

// runLive replays the trace over real HTTP + WebSockets.
func runLive(subscribers int, duration time.Duration, budgetKB, seed int64, speedup float64) error {
	gen := trace.DefaultGenConfig()
	gen.Seed = seed
	gen.Subscribers = subscribers
	gen.UniqueSubscriptions = subscribers * 4
	gen.Duration = duration
	tr, err := trace.Generate(gen)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d activities; replaying LIVE at %.0fx (about %v of wall time)\n",
		tr.Len(), speedup, time.Duration(float64(duration)/speedup).Round(time.Second))

	// Loopback deployment.
	notifier := bdms.NewWebhookNotifier(4, 512, nil)
	defer notifier.Close()
	cluster := bdms.NewCluster(bdms.WithNotifier(notifier))
	for _, ds := range []string{"EmergencyReports", "Shelters"} {
		if err := cluster.CreateDataset(ds, bdms.Schema{}); err != nil {
			return err
		}
	}
	for _, spec := range workload.EmergencyChannels() {
		if err := cluster.DefineChannel(bdms.ChannelDef{
			Name: spec.Name, Params: spec.Params, Body: spec.Body, Period: spec.Period,
		}); err != nil {
			return err
		}
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(200 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				cluster.RunRepetitiveDue()
			}
		}
	}()
	clusterLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	clusterSrv := &http.Server{Handler: bdms.NewServer(cluster).Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = clusterSrv.Serve(clusterLn) }()
	defer clusterSrv.Close()
	clusterURL := "http://" + clusterLn.Addr().String()

	brokerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	brokerURL := "http://" + brokerLn.Addr().String()
	b, err := broker.New(broker.Config{
		ID:          "replay-broker",
		Backend:     bdms.NewClient(clusterURL, nil),
		CallbackURL: brokerURL + "/v1/callbacks/results",
		Policy:      core.LSC{},
		CacheBudget: budgetKB << 10,
	})
	if err != nil {
		return err
	}
	brokerSrv := &http.Server{Handler: broker.NewServer(b).Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = brokerSrv.Serve(brokerLn) }()
	defer brokerSrv.Close()

	player, err := liveplay.NewPlayer(liveplay.Config{
		Cluster:   bdms.NewClient(clusterURL, nil),
		BrokerURL: brokerURL,
		Speedup:   speedup,
	})
	if err != nil {
		return err
	}
	defer player.Close()
	start := time.Now()
	if err := trace.Play(tr, player); err != nil {
		return err
	}
	time.Sleep(500 * time.Millisecond) // drain in-flight notifications
	player.Close()
	st := b.Stats()
	fmt.Printf("live replay finished in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  %d frontend -> %d backend subscriptions\n", b.NumFrontendSubs(), b.NumBackendSubs())
	fmt.Printf("  hit ratio %.3f, %d notification-driven retrievals, median wall latency %.1fms\n",
		st.HitRatio(), int(player.Retrievals.Value()), player.Latency.Quantile(0.5)*1000)
	return nil
}

func run(subscribers int, duration time.Duration, budgetKB int64, out string, seed int64) error {
	gen := trace.DefaultGenConfig()
	gen.Seed = seed
	gen.Subscribers = subscribers
	gen.UniqueSubscriptions = subscribers * 4
	gen.Duration = duration
	tr, err := trace.Generate(gen)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d activities over %v for %d subscribers\n",
		tr.Len(), gen.Duration, gen.Subscribers)

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := tr.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", out)
	}

	budget := budgetKB << 10
	for _, p := range []core.Policy{core.NC{}, core.LSC{}} {
		rig, err := experiments.NewRig(experiments.RigConfig{
			Policy:      p,
			CacheBudget: budget,
			Seed:        seed,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		if err := trace.Play(tr, rig); err != nil {
			return err
		}
		st := rig.Broker().Stats()
		fmt.Printf("\npolicy %-4s (budget %dKB): replayed in %v\n",
			p.Name(), budgetKB, time.Since(start).Round(time.Millisecond))
		fmt.Printf("  frontend subs %d -> backend subs %d (suppression)\n",
			rig.Broker().NumFrontendSubs(), rig.Broker().NumBackendSubs())
		fmt.Printf("  hit ratio %.3f, mean latency %.3fs, fetched %.2fMB from the cluster\n",
			st.HitRatio(), st.Latency.Mean(), st.FetchBytes.Value()/(1<<20))
	}
	fmt.Println("\nthe cached run answers most retrievals at the edge; NC pays the cluster round trip every time.")
	return nil
}
