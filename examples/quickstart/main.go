// Quickstart: the smallest end-to-end Big Active Data flow, fully
// in-process — a data cluster with one continuous parameterized channel, a
// caching broker, two subscribers sharing a backend subscription, one
// publication, and retrievals served from the broker cache.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gobad/internal/bdms"
	"gobad/internal/broker"
	"gobad/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A data cluster with an open-schema dataset and a parameterized
	// continuous channel: "alert me about emergencies of type $etype".
	var brk *broker.Broker
	cluster := bdms.NewCluster(
		bdms.WithNotifier(bdms.NotifierFunc(func(subID, _ string, latest time.Duration) {
			// In-process wiring: the cluster's webhook IS the broker.
			if brk != nil {
				_ = brk.HandleNotification(subID, latest)
			}
		})),
	)
	if err := cluster.CreateDataset("EmergencyReports", bdms.Schema{}); err != nil {
		return err
	}
	if err := cluster.DefineChannel(bdms.ChannelDef{
		Name:   "EmergencyAlerts",
		Params: []string{"etype"},
		Body:   "select * from EmergencyReports r where r.etype = $etype",
	}); err != nil {
		return err
	}

	// 2. A broker caching channel results under the LSC policy with a
	// 1 MB budget.
	b, err := broker.New(broker.Config{
		ID:          "quickstart-broker",
		Backend:     cluster,
		Policy:      core.LSC{},
		CacheBudget: 1 << 20,
	})
	if err != nil {
		return err
	}
	brk = b

	// 3. Two subscribers ask for fire alerts; the broker suppresses the
	// duplicate and makes ONE backend subscription.
	fsAlice, err := b.Subscribe("alice", "EmergencyAlerts", []any{"fire"})
	if err != nil {
		return err
	}
	fsBob, err := b.Subscribe("bob", "EmergencyAlerts", []any{"fire"})
	if err != nil {
		return err
	}
	fmt.Printf("frontend subscriptions: %d, backend subscriptions: %d (suppressed)\n",
		b.NumFrontendSubs(), b.NumBackendSubs())

	// 4. A publisher reports a fire; the cluster matches it against the
	// channel, notifies the broker, and the broker caches the result.
	if _, err := cluster.Ingest("EmergencyReports", map[string]any{
		"etype":    "fire",
		"severity": 4,
		"location": map[string]any{"lat": 33.6846, "lon": -117.8265},
		"message":  "structure fire near campus",
	}); err != nil {
		return err
	}

	// 5. Both subscribers retrieve — each gets the result, alice's and
	// bob's retrievals share the single cached copy.
	for _, sub := range []struct{ name, fs string }{
		{"alice", fsAlice}, {"bob", fsBob},
	} {
		items, latest, err := b.GetResults(sub.name, sub.fs)
		if err != nil {
			return err
		}
		for _, it := range items {
			src := "data cluster"
			if it.FromCache {
				src = "broker cache"
			}
			fmt.Printf("%s received %s (%d bytes) from the %s: %v\n",
				sub.name, it.ID, it.Size, src, it.Rows[0]["message"])
		}
		if err := b.Ack(sub.name, sub.fs, latest); err != nil {
			return err
		}
	}

	st := b.Stats()
	fmt.Printf("broker cache: hit ratio %.2f, %s cached\n",
		st.HitRatio(), fmt.Sprintf("%dB", b.Manager().TotalSize()))
	return nil
}
