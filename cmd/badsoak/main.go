// Command badsoak runs the session-hub soak harness (`make soak`): it
// stands up N simulated WebSocket sessions with Zipf-skewed subscription
// interest plus churn, drives a dispatch phase, and writes the
// measurements as a benchjson report (the BENCH_fanout.json format), one
// entry per session count. The committed BENCH_soak.json is its output at
// 10k and 100k sessions; cmd/benchguard gates regressions against it.
//
// Usage:
//
//	badsoak -sessions 10000,100000 -out BENCH_soak.json
//	badsoak -sessions 10000 -out .soak_check.json   # CI-sized check run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gobad/internal/broker"
)

type benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Note        string            `json:"note"`
	Environment map[string]string `json:"environment"`
	Benchmarks  []benchmark       `json:"benchmarks"`
}

func main() {
	sessions := flag.String("sessions", "10000,100000", "comma-separated session counts to soak")
	subsPool := flag.Int("subs", 1000, "backend subscription pool size")
	zipfS := flag.Float64("zipf", 0.9, "Zipf skew of interest assignment and event traffic")
	events := flag.Int("events", 2000, "dispatch events per run")
	churn := flag.Float64("churn", 0.1, "fraction of sessions churned before dispatch")
	seed := flag.Int64("seed", 1, "RNG seed")
	out := flag.String("out", "BENCH_soak.json", "output report path (- for stdout)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	counts, err := parseCounts(*sessions)
	if err != nil {
		fatal(err)
	}

	rep := report{
		Note: fmt.Sprintf("Session-hub soak: pooled writers over the interest-keyed index; "+
			"%d backend subs, zipf s=%.2f, %d events, %.0f%% churn, seed %d. "+
			"Regenerate with `make soak`.", *subsPool, *zipfS, *events, *churn*100, *seed),
		Environment: map[string]string{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		},
	}

	for _, n := range counts {
		progress := func(format string, args ...any) {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "badsoak[%d]: %s\n", n, fmt.Sprintf(format, args...))
			}
		}
		start := time.Now()
		res, err := broker.RunSoak(broker.SoakConfig{
			Sessions:      n,
			BackendSubs:   *subsPool,
			ZipfS:         *zipfS,
			Events:        *events,
			ChurnFraction: *churn,
			Seed:          *seed,
			Progress:      progress,
		})
		if err != nil {
			fatal(err)
		}
		progress("done in %v: rss/session=%.0fB p99-dispatch=%v allocs/op=%.1f",
			time.Since(start).Round(time.Millisecond), res.RSSPerSession,
			res.DispatchP99, res.AllocsPerOp)
		rep.Benchmarks = append(rep.Benchmarks, benchmark{
			Name:       fmt.Sprintf("Soak/sessions=%d", n),
			Package:    "gobad/internal/broker",
			Iterations: res.Events,
			Metrics: map[string]float64{
				"connections":        float64(res.Sessions),
				"rss-bytes/session":  res.RSSPerSession,
				"heap-bytes/session": res.HeapPerSession,
				"p50-dispatch-ns":    float64(res.DispatchP50),
				"p99-dispatch-ns":    float64(res.DispatchP99),
				"allocs/op":          res.AllocsPerOp,
				"goroutines":         float64(res.Goroutines),
				"frames":             float64(res.Frames),
			},
		})
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "badsoak: wrote %s (%d runs)\n", *out, len(counts))
	}
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("badsoak: bad session count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("badsoak: no session counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "badsoak:", err)
	os.Exit(1)
}
