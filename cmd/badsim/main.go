// Command badsim runs one discrete-event simulation (Section V) and prints
// its metrics as JSON.
//
// Usage:
//
//	badsim -policy lsc -budget 100MB -scale 10
//	badsim -policy ttl -budget 50MB -duration 2h -subscribers 5000
//	badsim -policy lsc -budget 100MB -scale 10 -brokers 3 -metrics-out -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gobad/internal/cliutil"
	"gobad/internal/core"
	"gobad/internal/experiments"
	"gobad/internal/faults"
	"gobad/internal/sim"
)

func main() {
	policy := flag.String("policy", "lsc", "caching policy: lru|lsc|lscz|lsd|exp|ttl|nc")
	budget := flag.String("budget", "100MB", "cache budget, e.g. 50MB, 512KB")
	scale := flag.Float64("scale", 10, "population down-scale factor (1 = full Table II)")
	duration := flag.Duration("duration", 0, "override simulated duration")
	subscribers := flag.Int("subscribers", 0, "override subscriber count")
	backendSubs := flag.Int("backend-subs", 0, "override backend subscription count")
	seed := flag.Int64("seed", 1, "random seed")
	brokers := flag.Int("brokers", 1, "number of cooperating edge brokers (splits the budget, enables peer lookups)")
	noPeer := flag.Bool("no-peer", false, "disable the broker peer-lookup tier (multi-broker ablation baseline)")
	perCache := flag.Bool("per-cache", false, "include per-cache summaries in the output")
	metricsOut := flag.String("metrics-out", "", "write the run's final metrics in Prometheus text format to this file ('-' = stderr)")
	faultPlan := flag.String("fault-plan", "", "inject data-cluster failures from this JSON fault plan (see internal/faults)")
	staleServe := flag.Bool("stale-serve", false, "serve cached results stale when a cluster fetch fails")
	flag.Parse()

	if err := run(*policy, *budget, *scale, *duration, *subscribers, *backendSubs, *seed, *brokers, *noPeer, *perCache, *metricsOut, *faultPlan, *staleServe); err != nil {
		fmt.Fprintln(os.Stderr, "badsim:", err)
		os.Exit(1)
	}
}

func run(policyName, budgetStr string, scale float64, duration time.Duration,
	subscribers, backendSubs int, seed int64, brokers int, noPeer, perCache bool, metricsOut, faultPlan string, staleServe bool) error {
	p, err := core.PolicyByName(policyName)
	if err != nil {
		return err
	}
	budget, err := cliutil.ParseBytes(budgetStr)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultSimBase(scale)
	cfg.Policy = p
	cfg.CacheBudget = budget
	cfg.Seed = seed
	if duration > 0 {
		cfg.Duration = duration
	}
	if subscribers > 0 {
		cfg.Subscribers = subscribers
	}
	if backendSubs > 0 {
		cfg.BackendSubs = backendSubs
	}
	if brokers > 0 {
		cfg.Brokers = brokers
	}
	cfg.NoPeerLookup = noPeer
	if faultPlan != "" {
		plan, err := faults.LoadPlan(faultPlan)
		if err != nil {
			return err
		}
		cfg.FaultPlan = &plan
	}
	cfg.StaleServe = staleServe
	switch metricsOut {
	case "":
	case "-":
		cfg.ExpositionWriter = os.Stderr
	default:
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.ExpositionWriter = f
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	if !perCache {
		res.PerCache = nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
