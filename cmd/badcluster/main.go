// Command badcluster runs a standalone BAD data cluster node: the
// mini-AsterixDB substrate with datasets, parameterized channels, backend
// subscriptions and webhook notifications, served over REST.
//
// Usage:
//
//	badcluster -addr :19002 -nodes 3 [-emergency]
//
// -emergency preloads the city-emergency catalog (datasets + Table III
// channels) so brokers and clients can subscribe immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gobad/internal/bcs"
	"gobad/internal/bdms"
	"gobad/internal/cliutil"
	"gobad/internal/workload"
)

func main() {
	addr := flag.String("addr", ":19002", "listen address")
	nodes := flag.Int("nodes", 3, "storage nodes per dataset")
	emergency := flag.Bool("emergency", true, "preload the city-emergency catalog (Table III)")
	repTick := flag.Duration("repetitive-tick", time.Second, "how often repetitive channels are polled")
	webhookAttempts := flag.Int("webhook-attempts", 8, "delivery attempts per webhook notification before it is abandoned")
	webhookBatch := flag.Duration("webhook-batch-window", 0, "coalesce webhook notifications per (subscription, callback) for this window before one combined POST (0 = immediate)")
	walPath := flag.String("wal", "", "write-ahead log path for durable publications (empty = in-memory only)")
	bcsURL := flag.String("bcs", "", "BCS base URL for rerouting webhooks whose broker died (empty = abandon after the attempt budget)")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	debugAddr := flag.String("debug-addr", "", "debug listen address for pprof and /debug/runtime (empty = off)")
	traceOut := flag.String("trace-out", "", "write retained traces as JSON to this path on shutdown (\"-\" = stdout, empty = off)")
	flag.Parse()

	if err := run(*addr, *nodes, *emergency, *repTick, *webhookAttempts, *webhookBatch, *walPath, *bcsURL, *logLevel, *debugAddr, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "badcluster:", err)
		os.Exit(1)
	}
}

func run(addr string, nodes int, emergency bool, repTick time.Duration, webhookAttempts int, webhookBatch time.Duration, walPath, bcsURL, logLevel, debugAddr, traceOut string) error {
	observer, err := cliutil.NewObserver("badcluster", logLevel)
	if err != nil {
		return err
	}
	stopDebug := cliutil.StartDebug(debugAddr, observer.Logger)
	defer stopDebug()
	// Webhook deliveries are at-least-once: failures are WARN-logged with
	// their trace ID, redelivered with backoff and tallied on /metrics.
	notifierStats := &bdms.NotifierStats{}
	notifierOpts := []bdms.NotifierOption{
		bdms.WithNotifierLogger(observer.Logger),
		bdms.WithNotifierMaxAttempts(webhookAttempts),
		bdms.WithNotifierBatchWindow(webhookBatch),
		bdms.WithNotifierStats(notifierStats),
	}
	if bcsURL != "" {
		// A dead broker's webhook callback is re-resolved through the BCS
		// once before the notification is abandoned.
		notifierOpts = append(notifierOpts,
			bdms.WithNotifierResolver(bdms.BCSCallbackResolver(bcs.NewClient(bcsURL, nil))))
	}
	notifier := bdms.NewWebhookNotifier(4, 1024, nil, notifierOpts...)
	defer notifier.Close()
	observer.Registry.MustRegister(notifierStats.Collector())
	opts := []bdms.Option{bdms.WithNodes(nodes), bdms.WithNotifier(notifier)}
	var cluster *bdms.Cluster
	if walPath != "" {
		var err error
		cluster, err = bdms.OpenWAL(walPath, opts...)
		if err != nil {
			return err
		}
		log.Printf("recovered datasets from %s: %v", walPath, cluster.DatasetNames())
	} else {
		cluster = bdms.NewCluster(opts...)
	}

	if emergency && cluster.Dataset("EmergencyReports") == nil {
		if err := preloadEmergency(cluster); err != nil {
			return err
		}
		log.Printf("preloaded emergency catalog: datasets %v", cluster.DatasetNames())
	} else if emergency {
		// Datasets recovered from the WAL; channels are runtime state and
		// are always (re)registered.
		if err := preloadChannels(cluster); err != nil {
			return err
		}
	}

	// Drive repetitive channels.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(repTick)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				cluster.RunRepetitiveDue()
			}
		}
	}()

	srv := &http.Server{
		Addr:              addr,
		Handler:           bdms.NewServer(cluster, bdms.WithObserver(observer)).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("badcluster listening on %s (%d storage nodes)", addr, nodes)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case sig := <-sigCh:
		log.Printf("badcluster: %s received, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}
	cliutil.DumpTraces(traceOut, observer.Traces, observer.Logger)
	return nil
}

func preloadEmergency(cluster *bdms.Cluster) error {
	if err := cluster.CreateDataset("EmergencyReports", bdms.Schema{Fields: []bdms.Field{
		{Name: "etype", Type: bdms.TypeString},
		{Name: "severity", Type: bdms.TypeNumber},
		{Name: "location", Type: bdms.TypeObject},
	}}); err != nil {
		return err
	}
	if err := cluster.CreateDataset("Shelters", bdms.Schema{}); err != nil {
		return err
	}
	return preloadChannels(cluster)
}

func preloadChannels(cluster *bdms.Cluster) error {
	for _, spec := range workload.EmergencyChannels() {
		err := cluster.DefineChannel(bdms.ChannelDef{
			Name:   spec.Name,
			Params: spec.Params,
			Body:   spec.Body,
			Period: spec.Period,
		})
		if err != nil {
			return err
		}
	}
	return nil
}
