// Command badcluster runs a standalone BAD data cluster node: the
// mini-AsterixDB substrate with datasets, parameterized channels, backend
// subscriptions and webhook notifications, served over REST.
//
// Usage:
//
//	badcluster -addr :19002 -nodes 3 [-emergency]
//
// -emergency preloads the city-emergency catalog (datasets + Table III
// channels) so brokers and clients can subscribe immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gobad/internal/bcs"
	"gobad/internal/bdms"
	"gobad/internal/cliutil"
	"gobad/internal/workload"
)

func main() {
	addr := flag.String("addr", ":19002", "listen address")
	nodes := flag.Int("nodes", 3, "storage nodes per dataset")
	emergency := flag.Bool("emergency", true, "preload the city-emergency catalog (Table III)")
	repTick := flag.Duration("repetitive-tick", time.Second, "how often repetitive channels are polled")
	webhookAttempts := flag.Int("webhook-attempts", 8, "delivery attempts per webhook notification before it is abandoned")
	webhookBatch := flag.Duration("webhook-batch-window", 0, "coalesce webhook notifications per (subscription, callback) for this window before one combined POST (0 = immediate)")
	walPath := flag.String("wal", "", "single-file write-ahead log path (empty = in-memory only; prefer -wal-dir)")
	walDir := flag.String("wal-dir", "", "segmented durability directory: WAL segments + periodic snapshots with log compaction (empty = off)")
	walSync := flag.String("wal-sync", "interval", "WAL fsync policy: always (fsync per append) or interval (periodic fsync)")
	snapshotInterval := flag.Duration("snapshot-interval", time.Minute, "how often -wal-dir state is snapshotted and the log compacted (0 = never)")
	bcsURL := flag.String("bcs", "", "BCS base URL for rerouting webhooks whose broker died (empty = abandon after the attempt budget)")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	debugAddr := flag.String("debug-addr", "", "debug listen address for pprof and /debug/runtime (empty = off)")
	traceOut := flag.String("trace-out", "", "write retained traces as JSON to this path on shutdown (\"-\" = stdout, empty = off)")
	flag.Parse()

	if err := run(*addr, *nodes, *emergency, *repTick, *webhookAttempts, *webhookBatch, *walPath, *walDir, *walSync, *snapshotInterval, *bcsURL, *logLevel, *debugAddr, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "badcluster:", err)
		os.Exit(1)
	}
}

func run(addr string, nodes int, emergency bool, repTick time.Duration, webhookAttempts int, webhookBatch time.Duration, walPath, walDir, walSync string, snapshotInterval time.Duration, bcsURL, logLevel, debugAddr, traceOut string) error {
	observer, err := cliutil.NewObserver("badcluster", logLevel)
	if err != nil {
		return err
	}
	stopDebug := cliutil.StartDebug(debugAddr, observer.Logger)
	defer stopDebug()
	// Webhook deliveries are at-least-once: failures are WARN-logged with
	// their trace ID, redelivered with backoff and tallied on /metrics.
	notifierStats := &bdms.NotifierStats{}
	notifierOpts := []bdms.NotifierOption{
		bdms.WithNotifierLogger(observer.Logger),
		bdms.WithNotifierMaxAttempts(webhookAttempts),
		bdms.WithNotifierBatchWindow(webhookBatch),
		bdms.WithNotifierStats(notifierStats),
	}
	if bcsURL != "" {
		// A dead broker's webhook callback is re-resolved through the BCS
		// once before the notification is abandoned.
		notifierOpts = append(notifierOpts,
			bdms.WithNotifierResolver(bdms.BCSCallbackResolver(bcs.NewClient(bcsURL, nil))))
	}
	notifier := bdms.NewWebhookNotifier(4, 1024, nil, notifierOpts...)
	defer notifier.Close()
	observer.Registry.MustRegister(notifierStats.Collector())
	opts := []bdms.Option{bdms.WithNodes(nodes), bdms.WithNotifier(notifier)}
	var cluster *bdms.Cluster
	var store *bdms.Store
	switch {
	case walDir != "":
		policy, err := bdms.ParseSyncPolicy(walSync)
		if err != nil {
			return err
		}
		store, err = bdms.OpenStore(walDir, bdms.StoreConfig{
			Sync:            policy,
			CompactInterval: snapshotInterval,
			Logger:          observer.Logger,
			Traces:          observer.Traces,
		}, opts...)
		if err != nil {
			return err
		}
		defer store.Close()
		cluster = store.Cluster()
		log.Printf("recovered store %s (sync=%s): datasets %v, %d subscriptions",
			walDir, policy, cluster.DatasetNames(), cluster.NumSubscriptions())
	case walPath != "":
		var err error
		cluster, err = bdms.OpenWAL(walPath, opts...)
		if err != nil {
			return err
		}
		log.Printf("recovered datasets from %s: %v", walPath, cluster.DatasetNames())
	default:
		cluster = bdms.NewCluster(opts...)
	}

	if emergency && cluster.Dataset("EmergencyReports") == nil {
		if err := preloadEmergency(cluster); err != nil {
			return err
		}
		log.Printf("preloaded emergency catalog: datasets %v", cluster.DatasetNames())
	} else if emergency {
		// Channels may already have been recovered from the WAL/snapshot;
		// re-registering an identical catalog is then a no-op.
		if err := preloadChannels(cluster); err != nil {
			return err
		}
	}

	// Drive repetitive channels.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(repTick)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				cluster.RunRepetitiveDue()
			}
		}
	}()

	serverOpts := []bdms.ServerOption{bdms.WithObserver(observer)}
	if store != nil {
		serverOpts = append(serverOpts, bdms.WithStore(store))
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           bdms.NewServer(cluster, serverOpts...).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("badcluster listening on %s (%d storage nodes)", addr, nodes)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case sig := <-sigCh:
		log.Printf("badcluster: %s received, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}
	cliutil.DumpTraces(traceOut, observer.Traces, observer.Logger)
	return nil
}

func preloadEmergency(cluster *bdms.Cluster) error {
	if err := cluster.CreateDataset("EmergencyReports", bdms.Schema{Fields: []bdms.Field{
		{Name: "etype", Type: bdms.TypeString},
		{Name: "severity", Type: bdms.TypeNumber},
		{Name: "location", Type: bdms.TypeObject},
	}}); err != nil {
		return err
	}
	if err := cluster.CreateDataset("Shelters", bdms.Schema{}); err != nil {
		return err
	}
	return preloadChannels(cluster)
}

func preloadChannels(cluster *bdms.Cluster) error {
	for _, spec := range workload.EmergencyChannels() {
		err := cluster.DefineChannel(bdms.ChannelDef{
			Name:   spec.Name,
			Params: spec.Params,
			Body:   spec.Body,
			Period: spec.Period,
		})
		if err != nil && !errors.Is(err, bdms.ErrExists) {
			return err
		}
	}
	return nil
}
