// Command badtrace generates a synthetic subscriber-interaction trace
// (Section VI) as JSON lines on stdout, or summarizes an existing trace.
//
// Usage:
//
//	badtrace -subscribers 400 -duration 1h > trace.jsonl
//	badtrace -summarize trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gobad/internal/trace"
)

func main() {
	subscribers := flag.Int("subscribers", 400, "subscriber population")
	subsPer := flag.Int("subs-per-subscriber", 9, "frontend subscriptions per subscriber")
	unique := flag.Int("unique", 800, "distinct (channel, params) pool size")
	duration := flag.Duration("duration", time.Hour, "trace duration")
	publishEvery := flag.Duration("publish-interval", 10*time.Second, "mean publication gap")
	publishBurst := flag.Int("publish-burst", 1, "max co-timed publications per arrival (replayed via batch ingest; mean rate is preserved)")
	zipf := flag.Float64("zipf", 1.0, "subscription popularity skew")
	seed := flag.Int64("seed", 1, "random seed")
	summarize := flag.String("summarize", "", "summarize an existing JSONL trace instead of generating")
	flag.Parse()

	if err := run(*subscribers, *subsPer, *unique, *duration, *publishEvery, *publishBurst, *zipf, *seed, *summarize); err != nil {
		fmt.Fprintln(os.Stderr, "badtrace:", err)
		os.Exit(1)
	}
}

func run(subscribers, subsPer, unique int, duration, publishEvery time.Duration,
	publishBurst int, zipf float64, seed int64, summarize string) error {
	if summarize != "" {
		f, err := os.Open(summarize)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return err
		}
		counts := map[trace.Kind]int{}
		for _, a := range tr.Activities {
			counts[a.Kind]++
		}
		fmt.Printf("activities: %d over %v\n", tr.Len(), tr.Duration().Round(time.Second))
		for _, k := range []trace.Kind{trace.Login, trace.Logout, trace.Subscribe, trace.Unsubscribe, trace.Publish} {
			fmt.Printf("  %-12s %d\n", k, counts[k])
		}
		return nil
	}

	cfg := trace.DefaultGenConfig()
	cfg.Seed = seed
	cfg.Subscribers = subscribers
	cfg.SubsPerSubscriber = subsPer
	cfg.UniqueSubscriptions = unique
	cfg.Duration = duration
	cfg.PublishInterval = publishEvery
	cfg.PublishBurst = publishBurst
	cfg.ZipfS = zipf
	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	return tr.Write(os.Stdout)
}
