// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so benchmark runs can be committed and diffed (see `make
// bench-json`, which maintains BENCH_fanout.json).
//
// Each benchmark line of the form
//
//	BenchmarkFanout-8   200   183098 ns/op   69590 B/op   56 allocs/op
//
// becomes {"name": "BenchmarkFanout", "iterations": 200, "metrics":
// {"ns/op": 183098, ...}}; custom b.ReportMetric units pass through
// unchanged. Non-benchmark lines are ignored, except goos/goarch/pkg/cpu
// headers, which are captured into the environment block.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Note        string            `json:"note,omitempty"`
	Environment map[string]string `json:"environment,omitempty"`
	Benchmarks  []benchmark       `json:"benchmarks"`
}

func main() {
	note := flag.String("note", "", "free-form note embedded in the output (e.g. what baseline this run is compared against)")
	flag.Parse()

	rep := report{Note: *note, Environment: map[string]string{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			rep.Environment[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				b.Package = pkg
				merge(&rep, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// merge folds a run into the report, best-of-N per metric when the same
// benchmark appears multiple times (-count>1): the minimum survives, so a
// cold first run (pool warm-up, page faults) does not misrepresent the
// steady state. This is the same convention cmd/benchguard compares with.
func merge(rep *report, b benchmark) {
	for i := range rep.Benchmarks {
		prev := &rep.Benchmarks[i]
		if prev.Name != b.Name || prev.Package != b.Package {
			continue
		}
		for unit, v := range b.Metrics {
			if old, ok := prev.Metrics[unit]; !ok || v < old {
				prev.Metrics[unit] = v
			}
		}
		return
	}
	rep.Benchmarks = append(rep.Benchmarks, b)
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs.
func parseBench(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix; it is environment, not identity.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
