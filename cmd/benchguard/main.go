// Command benchguard compares `go test -bench` output on stdin against a
// committed baseline (BENCH_fanout.json) and fails when a guarded
// benchmark's ns/op regressed beyond the tolerance. It is the CI smoke
// guard keeping the traced fan-out path within noise of the untraced
// baseline (see `make bench-guard`).
//
// Usage:
//
//	go test -bench BenchmarkFanout -run '^$' ./internal/broker/ | \
//	    benchguard -baseline BENCH_fanout.json -bench BenchmarkFanout -tolerance 0.05
//
// A missing baseline entry or benchmark line is an error: a guard that
// silently guards nothing is worse than no guard.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_fanout.json", "baseline JSON (benchjson format)")
	benchName := flag.String("bench", "BenchmarkFanout", "benchmark name to guard")
	tolerance := flag.Float64("tolerance", 0.05, "allowed fractional ns/op regression over the baseline")
	flag.Parse()

	if err := run(*baselinePath, *benchName, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(baselinePath, benchName string, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	want := -1.0
	for _, b := range base.Benchmarks {
		if b.Name == benchName {
			want = b.Metrics["ns/op"]
		}
	}
	if want <= 0 {
		return fmt.Errorf("%s has no ns/op entry for %s", baselinePath, benchName)
	}

	// Best-of-N: with -count>1 on stdin the fastest run is compared, which
	// damps scheduler noise without hiding a real per-op regression.
	got := -1.0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, benchName) {
			continue
		}
		if v, ok := parseNsPerOp(line, benchName); ok && (got < 0 || v < got) {
			got = v
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if got <= 0 {
		return fmt.Errorf("no %s result line on stdin", benchName)
	}

	ratio := got/want - 1
	if ratio > tolerance {
		return fmt.Errorf("%s regressed: %.0f ns/op vs baseline %.0f (%+.1f%% > %.1f%% tolerance)",
			benchName, got, want, ratio*100, tolerance*100)
	}
	fmt.Printf("benchguard: %s ok: %.0f ns/op vs baseline %.0f (%+.1f%%, tolerance %.1f%%)\n",
		benchName, got, want, ratio*100, tolerance*100)
	return nil
}

// parseNsPerOp extracts the ns/op value from one benchmark result line,
// matching the exact name (modulo the -GOMAXPROCS suffix).
func parseNsPerOp(line, benchName string) (float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return 0, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if name != benchName {
		return 0, false
	}
	for i := 2; i+1 < len(fields); i += 2 {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			return v, err == nil
		}
	}
	return 0, false
}
