// Command benchguard compares benchmark results against committed
// baselines (BENCH_fanout.json, BENCH_soak.json) and fails when any
// guarded metric regressed beyond its tolerance. It is the CI guard that
// keeps the fan-out hot path and the session-hub soak numbers honest (see
// `make bench-guard`).
//
// Each -guard flag declares one guarded benchmark:
//
//	-guard 'baseline=BENCH_fanout.json;bench=BenchmarkFanout;source=stdin;metrics=ns/op:0.05,allocs/op:0.10'
//	-guard 'baseline=BENCH_soak.json;bench=Soak/sessions=10000;source=.soak_check.json;metrics=p99-dispatch-ns:0.50'
//
// source=stdin parses `go test -bench` output from standard input
// (best-of-N per metric when -count>1, damping scheduler noise without
// hiding a real regression); any other source is a benchjson report file,
// e.g. a fresh cmd/badsoak run. metrics lists metric:tolerance pairs,
// where tolerance is the allowed fractional increase over the baseline
// (all guarded metrics are lower-is-better).
//
// Every guard is evaluated and every metric printed as a diff row before
// the verdict, so one run shows the full picture instead of stopping at
// the first mismatch. A missing baseline entry, metric or result is a
// failure: a guard that silently guards nothing is worse than no guard.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

// guard is one parsed -guard spec.
type guard struct {
	baseline string
	bench    string
	source   string // "stdin" or a benchjson report path
	metrics  []metricSpec
}

type metricSpec struct {
	name      string
	tolerance float64
}

// row is one evaluated metric comparison.
type row struct {
	bench     string
	metric    string
	current   float64
	baseline  float64
	tolerance float64
	err       string // non-empty when the metric could not be resolved
}

func (r row) delta() float64 { return r.current/r.baseline - 1 }

func (r row) failed() bool {
	if r.err != "" {
		return true
	}
	if r.baseline <= 0 {
		// A zero baseline (e.g. 0 allocs/op) makes a ratio meaningless;
		// the tolerance is read as an absolute allowance instead.
		return r.current > r.tolerance
	}
	return r.delta() > r.tolerance
}

func main() {
	var specs []string
	flag.Func("guard", "guard spec: baseline=FILE;bench=NAME;source=stdin|FILE;metrics=name:tol,...  (repeatable)", func(s string) error {
		specs = append(specs, s)
		return nil
	})
	flag.Parse()
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no -guard specs given")
		os.Exit(2)
	}

	guards := make([]guard, 0, len(specs))
	needStdin := false
	for _, s := range specs {
		g, err := parseGuard(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		if g.source == "stdin" {
			needStdin = true
		}
		guards = append(guards, g)
	}

	var stdinResults map[string]map[string]float64
	if needStdin {
		var err error
		stdinResults, err = parseBenchOutput(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard: reading stdin:", err)
			os.Exit(1)
		}
	}

	var rows []row
	for _, g := range guards {
		rows = append(rows, evaluate(g, stdinResults)...)
	}

	printTable(rows)
	failures := 0
	for _, r := range rows {
		if r.failed() {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d metric(s) regressed or unresolved\n", failures)
		os.Exit(1)
	}
	fmt.Printf("benchguard: all %d metric(s) within tolerance\n", len(rows))
}

// parseGuard parses one -guard spec. Fields are ';'-separated key=value
// pairs (split on the first '=', so bench names may contain '=').
func parseGuard(spec string) (guard, error) {
	g := guard{source: "stdin"}
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return g, fmt.Errorf("bad guard field %q (want key=value)", field)
		}
		switch key {
		case "baseline":
			g.baseline = val
		case "bench":
			g.bench = val
		case "source":
			g.source = val
		case "metrics":
			for _, m := range strings.Split(val, ",") {
				name, tol, ok := strings.Cut(strings.TrimSpace(m), ":")
				if !ok {
					return g, fmt.Errorf("bad metric spec %q (want name:tolerance)", m)
				}
				t, err := strconv.ParseFloat(tol, 64)
				if err != nil || t < 0 {
					return g, fmt.Errorf("bad tolerance in %q", m)
				}
				g.metrics = append(g.metrics, metricSpec{name: name, tolerance: t})
			}
		default:
			return g, fmt.Errorf("unknown guard field %q", key)
		}
	}
	if g.baseline == "" || g.bench == "" || len(g.metrics) == 0 {
		return g, fmt.Errorf("guard %q needs baseline=, bench= and metrics=", spec)
	}
	return g, nil
}

// evaluate resolves one guard's baseline and current values into rows,
// one per guarded metric. Resolution failures become failing rows rather
// than aborting, so the final table is complete.
func evaluate(g guard, stdinResults map[string]map[string]float64) []row {
	rows := make([]row, 0, len(g.metrics))
	base, baseErr := loadBench(g.baseline, g.bench)

	var cur map[string]float64
	var curErr string
	if g.source == "stdin" {
		cur = stdinResults[g.bench]
		if cur == nil {
			curErr = "no result line on stdin"
		}
	} else {
		var err error
		cur, err = loadBench(g.source, g.bench)
		if err != nil {
			curErr = err.Error()
		}
	}

	for _, m := range g.metrics {
		r := row{bench: g.bench, metric: m.name, tolerance: m.tolerance}
		switch {
		case baseErr != nil:
			r.err = baseErr.Error()
		case curErr != "":
			r.err = curErr
		default:
			var ok bool
			if r.baseline, ok = base[m.name]; !ok {
				r.err = fmt.Sprintf("baseline %s has no %q metric", g.baseline, m.name)
			} else if r.current, ok = cur[m.name]; !ok {
				r.err = fmt.Sprintf("current result has no %q metric", m.name)
			}
		}
		rows = append(rows, r)
	}
	return rows
}

// loadBench reads one benchmark's metrics from a benchjson report file.
func loadBench(path, bench string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	for _, b := range rep.Benchmarks {
		if b.Name == bench {
			return b.Metrics, nil
		}
	}
	return nil, fmt.Errorf("%s has no entry for %s", path, bench)
}

// parseBenchOutput scans `go test -bench` text and returns, per benchmark
// name (modulo the -GOMAXPROCS suffix), the minimum observed value of each
// reported metric — best-of-N when -count>1.
func parseBenchOutput(f *os.File) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := out[name]
		if m == nil {
			m = map[string]float64{}
			out[name] = m
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if prev, ok := m[unit]; !ok || v < prev {
				m[unit] = v
			}
		}
	}
	return out, sc.Err()
}

// printTable renders every evaluated metric as one diff row.
func printTable(rows []row) {
	fmt.Printf("%-28s %-20s %14s %14s %9s %9s  %s\n",
		"benchmark", "metric", "current", "baseline", "delta", "tol", "status")
	for _, r := range rows {
		if r.err != "" {
			fmt.Printf("%-28s %-20s %14s %14s %9s %9s  FAIL (%s)\n",
				r.bench, r.metric, "-", "-", "-", "-", r.err)
			continue
		}
		status := "ok"
		if r.failed() {
			status = "FAIL"
		}
		if r.baseline <= 0 {
			fmt.Printf("%-28s %-20s %14.1f %14.1f %9s %9.1f  %s (absolute)\n",
				r.bench, r.metric, r.current, r.baseline, "-", r.tolerance, status)
			continue
		}
		fmt.Printf("%-28s %-20s %14.1f %14.1f %+8.1f%% %8.1f%%  %s\n",
			r.bench, r.metric, r.current, r.baseline, r.delta()*100, r.tolerance*100, status)
	}
}
