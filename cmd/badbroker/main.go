// Command badbroker runs a BAD broker node: it subscribes to the data
// cluster on its clients' behalf, caches channel results under the chosen
// policy, serves the client-facing REST+WebSocket API and (optionally)
// registers with a Broker Coordination Service.
//
// Usage:
//
//	badbroker -addr :18080 -cluster http://127.0.0.1:19002 \
//	          -policy lsc -budget 64MB \
//	          [-bcs http://127.0.0.1:18000] [-public http://myhost:18080]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gobad/internal/bcs"
	"gobad/internal/bdms"
	"gobad/internal/broker"
	"gobad/internal/cliutil"
	"gobad/internal/core"
	"gobad/internal/httpx"
)

func main() {
	addr := flag.String("addr", ":18080", "listen address")
	public := flag.String("public", "", "public base URL (default http://127.0.0.1<addr>)")
	clusterURL := flag.String("cluster", "http://127.0.0.1:19002", "data cluster base URL")
	bcsURL := flag.String("bcs", "", "BCS base URL (optional)")
	id := flag.String("id", "broker-1", "broker id")
	policyName := flag.String("policy", "lsc", "caching policy: lru|lsc|lscz|lsd|exp|ttl|nc")
	budgetStr := flag.String("budget", "64MB", "cache budget")
	ttlInterval := flag.Duration("ttl-interval", time.Minute, "TTL recompute interval")
	shards := flag.Int("cache-shards", 0, "cache manager lock stripes (0 = default)")
	pushQueue := flag.Int("push-queue", 0, "per-session outbound notification queue bound (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful drain deadline on SIGTERM: queued pushes are flushed and sessions migrated within this bound")
	cacheSnapshot := flag.String("cache-snapshot", "", "warm cache snapshot path: written on graceful shutdown and restored (readiness-gated) on the next start (empty = off)")
	warmupMaxAge := flag.Duration("warmup-max-age", 5*time.Minute, "reject warm cache snapshots older than this")
	ringRefresh := flag.Duration("ring-refresh", 5*time.Second, "fabric ring refresh interval (requires -bcs; 0 disables the fabric)")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	debugAddr := flag.String("debug-addr", "", "debug listen address for pprof and /debug/runtime (empty = off)")
	traceOut := flag.String("trace-out", "", "write retained traces as JSON to this path on shutdown (\"-\" = stdout, empty = off)")
	res := resilienceFlags{}
	flag.IntVar(&res.retries, "cluster-retries", 4, "max attempts per cluster call (1 = no retries)")
	flag.DurationVar(&res.retryBase, "retry-base", 100*time.Millisecond, "base backoff between cluster retries")
	flag.DurationVar(&res.retryMax, "retry-max", 2*time.Second, "backoff cap between cluster retries")
	flag.IntVar(&res.breakerFailures, "breaker-failures", 5, "consecutive cluster failures that trip the circuit open (0 = no breaker)")
	flag.DurationVar(&res.breakerOpen, "breaker-open", 10*time.Second, "how long a tripped circuit stays open before probing")
	flag.BoolVar(&res.staleServe, "stale-serve", true, "serve cached results stale (zero ack marker) when a cluster fetch fails")
	flag.Parse()

	if err := run(*addr, *public, *clusterURL, *bcsURL, *id, *policyName, *budgetStr, *ttlInterval, *shards, *pushQueue, *drainTimeout, *ringRefresh, *cacheSnapshot, *warmupMaxAge, *logLevel, *debugAddr, *traceOut, res); err != nil {
		fmt.Fprintln(os.Stderr, "badbroker:", err)
		os.Exit(1)
	}
}

// resilienceFlags groups the cluster-facing fault-tolerance knobs: the
// retry schedule and circuit breaker on the bdms client, and stale-serve on
// the broker cache.
type resilienceFlags struct {
	retries         int
	retryBase       time.Duration
	retryMax        time.Duration
	breakerFailures int
	breakerOpen     time.Duration
	staleServe      bool
}

func run(addr, public, clusterURL, bcsURL, id, policyName, budgetStr string, ttlInterval time.Duration, shards, pushQueue int, drainTimeout, ringRefresh time.Duration, cacheSnapshot string, warmupMaxAge time.Duration, logLevel, debugAddr, traceOut string, res resilienceFlags) error {
	observer, err := cliutil.NewObserver("badbroker", logLevel)
	if err != nil {
		return err
	}
	stopDebug := cliutil.StartDebug(debugAddr, observer.Logger)
	defer stopDebug()
	policy, err := core.PolicyByName(policyName)
	if err != nil {
		return err
	}
	budget, err := cliutil.ParseBytes(budgetStr)
	if err != nil {
		return err
	}
	if public == "" {
		public = "http://127.0.0.1" + addr
		if !strings.HasPrefix(addr, ":") {
			public = "http://" + addr
		}
	}

	// The cluster client runs retry-around-breaker; both surfaces export
	// their counters on this broker's /metrics.
	retryStats := &httpx.RetryStats{}
	var clientOpts []bdms.ClientOption
	if res.retries > 1 {
		clientOpts = append(clientOpts, bdms.WithClientRetryer(&httpx.Retryer{
			MaxAttempts: res.retries,
			BaseDelay:   res.retryBase,
			MaxDelay:    res.retryMax,
			Stats:       retryStats,
		}))
		observer.Registry.MustRegister(retryStats.Collector())
	}
	if res.breakerFailures > 0 {
		breakers := httpx.NewBreakerSet(httpx.BreakerConfig{
			FailureThreshold: res.breakerFailures,
			OpenTimeout:      res.breakerOpen,
		})
		clientOpts = append(clientOpts, bdms.WithClientBreaker(breakers.For("cluster")))
		observer.Registry.MustRegister(breakers.Collector())
	}

	// With a BCS configured, the broker joins the cooperative fabric: the
	// membership ring refreshes on a ticker (below), peer lookups get their
	// own per-target circuit breakers, and HRW rebalance migrates sessions
	// whenever membership changes.
	var fabricCfg *broker.FabricConfig
	if bcsURL != "" && ringRefresh > 0 {
		peerBreakers := httpx.NewBreakerSet(httpx.BreakerConfig{
			FailureThreshold: res.breakerFailures,
			OpenTimeout:      res.breakerOpen,
		})
		var peerOpts []bdms.PeerClientOption
		if res.breakerFailures > 0 {
			peerOpts = append(peerOpts, bdms.WithPeerBreakers(peerBreakers))
			observer.Registry.MustRegister(peerBreakers.Collector())
		}
		fabricCfg = &broker.FabricConfig{
			BCS:   bdms.NewBCSClient(bcsURL, nil),
			Peers: bdms.NewPeerClient(nil, peerOpts...),
		}
	}

	b, err := broker.New(broker.Config{
		ID:           id,
		Backend:      bdms.NewClient(clusterURL, nil, clientOpts...),
		CallbackURL:  public + "/v1/callbacks/results",
		Fabric:       fabricCfg,
		WarmupMaxAge: warmupMaxAge,
	},
		broker.WithPolicy(policy),
		broker.WithCacheBudget(budget),
		broker.WithTTLConfig(core.TTLConfig{RecomputeInterval: ttlInterval}),
		broker.WithShards(shards),
		broker.WithPushQueue(pushQueue),
		broker.WithLogger(observer.Logger),
		broker.WithStaleServe(res.staleServe),
	)
	if err != nil {
		return err
	}

	// TTL machinery (no-op for non-TTL policies).
	if policy.StampTTL() {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			ticker := time.NewTicker(ttlInterval)
			defer ticker.Stop()
			expire := time.NewTicker(time.Second)
			defer expire.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					b.DriveTTL()
				case <-expire.C:
					b.ExpireDue()
				}
			}
		}()
	}

	// Cold-start restore: a warm cache snapshot from the previous run gates
	// readiness — the broker registers "warming" (excluded from BCS
	// placement) until the snapshot is installed.
	var restoreSnap *bdms.CacheSnapshot
	if cacheSnapshot != "" {
		snap, rerr := readCacheSnapshot(cacheSnapshot)
		switch {
		case rerr == nil:
			restoreSnap = snap
			b.SetWarming(true)
		case !errors.Is(rerr, fs.ErrNotExist):
			observer.Logger.Warn("cache snapshot unreadable; starting cold",
				"path", cacheSnapshot, "err", rerr)
		}
	}

	var reg *broker.Registration
	var bcsClient *bcs.Client
	if bcsURL != "" {
		bcsClient = bcs.NewClient(bcsURL, nil)
		reg, err = broker.RegisterWithBCS(b, bcsClient, public, 5*time.Second)
		if err != nil {
			return err
		}
		defer reg.Close()
		log.Printf("registered with BCS at %s as %s", bcsURL, id)
	}

	// Fabric ring refresh: a conditional GET per tick (304 when unchanged);
	// on a membership change, sessions the new ring places elsewhere are
	// migrated immediately.
	if fabricCfg != nil {
		fabricCtx, stopFabric := context.WithCancel(context.Background())
		defer stopFabric()
		go func() {
			ticker := time.NewTicker(ringRefresh)
			defer ticker.Stop()
			for {
				select {
				case <-fabricCtx.Done():
					return
				case <-ticker.C:
					changed, migrated, err := b.FabricTick(fabricCtx)
					if err != nil {
						observer.Logger.Warn("fabric ring refresh failed", "err", err)
						continue
					}
					if changed {
						log.Printf("badbroker %s: ring changed (epoch %d), migrated %d sessions",
							id, b.Ring().Epoch, migrated)
					}
				}
			}
		}()
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           broker.NewServer(b, broker.WithObserver(observer)).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	log.Printf("badbroker %s listening on %s (policy %s, budget %s, cluster %s)",
		id, addr, policy.Name(), budgetStr, clusterURL)

	if restoreSnap != nil {
		go func() {
			resp := b.InstallWarmup(context.Background(), *restoreSnap)
			b.SetWarming(false)
			log.Printf("badbroker %s: warm snapshot restored (applied %d, stashed %d, dropped %d)",
				id, resp.Applied, resp.Stashed, resp.Dropped)
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigCh)
	select {
	case err := <-serveErr:
		cliutil.DumpTraces(traceOut, observer.Traces, observer.Logger)
		return err
	case sig := <-sigCh:
		log.Printf("badbroker %s: %v received; draining sessions", id, sig)
	}
	defer cliutil.DumpTraces(traceOut, observer.Traces, observer.Logger)

	// Warm handoff: serialize the result caches' warm entries BEFORE the
	// drain touches anything, keep a local copy for this broker's own
	// restart, and ship the snapshot to the successor below.
	var handoff *bdms.CacheSnapshot
	if cacheSnapshot != "" || fabricCfg != nil {
		snap := b.SnapshotCache()
		handoff = &snap
		if cacheSnapshot != "" {
			if werr := writeCacheSnapshot(cacheSnapshot, snap); werr != nil {
				log.Printf("badbroker %s: cache snapshot write failed: %v", id, werr)
			} else {
				log.Printf("badbroker %s: cache snapshot written to %s (%d entries)",
					id, cacheSnapshot, len(snap.Entries))
			}
		}
	}

	// Graceful drain: leave the BCS first so no new subscribers are routed
	// here (and the successor Assign below cannot pick this broker), then
	// flush every session's queue and hand the sessions a migrate frame
	// naming a live successor, all within the drain deadline.
	if reg != nil {
		reg.Close()
	}
	successor := ""
	if bcsClient != nil {
		if info, aerr := bcsClient.Assign(); aerr == nil {
			successor = info.Address
		} else {
			log.Printf("badbroker %s: no successor from BCS (clients will rediscover): %v", id, aerr)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if handoff != nil && successor != "" && len(handoff.Entries) > 0 {
		peers := bdms.NewPeerClient(nil)
		if fabricCfg != nil {
			peers = fabricCfg.Peers
		}
		if resp, werr := peers.Warmup(ctx, successor, *handoff); werr != nil {
			log.Printf("badbroker %s: warm handoff to %s failed: %v", id, successor, werr)
		} else {
			log.Printf("badbroker %s: warm handoff to %s (applied %d, stashed %d, dropped %d)",
				id, successor, resp.Applied, resp.Stashed, resp.Dropped)
		}
	}
	migrated := b.Drain(ctx, successor)
	log.Printf("badbroker %s: migrated %d sessions (successor %q)", id, migrated, successor)
	if err := srv.Shutdown(ctx); err != nil {
		return srv.Close()
	}
	return nil
}

// readCacheSnapshot loads a warm cache snapshot written by a previous run.
func readCacheSnapshot(path string) (*bdms.CacheSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap bdms.CacheSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return &snap, nil
}

// writeCacheSnapshot persists the warm cache snapshot atomically
// (tmp + rename) so a crash mid-write cannot corrupt the previous one.
func writeCacheSnapshot(path string, snap bdms.CacheSnapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
