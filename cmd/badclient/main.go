// Command badclient is an interactive BAD subscriber: it discovers a
// broker (directly or through the BCS), subscribes to a parameterized
// channel, and tails notifications — retrieving and printing enriched
// results as they arrive.
//
// Usage:
//
//	badclient -bcs http://127.0.0.1:18000 -subscriber alice \
//	          -channel EmergencyAlerts -params '["fire"]'
//	badclient -broker http://127.0.0.1:18080 -subscriber bob \
//	          -channel SevereEmergenciesInCity -params '[3]' -watch 2m
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gobad/internal/bcs"
	"gobad/internal/broker"
	"gobad/internal/client"
)

func main() {
	brokerURL := flag.String("broker", "", "broker base URL (or use -bcs)")
	bcsURL := flag.String("bcs", "", "BCS base URL for broker discovery")
	subscriber := flag.String("subscriber", "", "subscriber identity (required)")
	channel := flag.String("channel", "", "channel to subscribe to (required)")
	paramsJSON := flag.String("params", "[]", "channel parameters as a JSON array")
	watch := flag.Duration("watch", time.Minute, "how long to tail notifications")
	reconnect := flag.Bool("reconnect", false, "supervise the connection: reconnect, resubscribe and resume across broker failures (requires -bcs)")
	flag.Parse()

	if err := run(*brokerURL, *bcsURL, *subscriber, *channel, *paramsJSON, *watch, *reconnect); err != nil {
		fmt.Fprintln(os.Stderr, "badclient:", err)
		os.Exit(1)
	}
}

func run(brokerURL, bcsURL, subscriber, channel, paramsJSON string, watch time.Duration, reconnect bool) error {
	if subscriber == "" || channel == "" {
		return fmt.Errorf("-subscriber and -channel are required")
	}
	var params []any
	if err := json.Unmarshal([]byte(paramsJSON), &params); err != nil {
		return fmt.Errorf("bad -params: %w", err)
	}
	cfg := client.Config{Subscriber: subscriber, BrokerURL: brokerURL}
	if brokerURL == "" {
		if bcsURL == "" {
			return fmt.Errorf("need -broker or -bcs")
		}
		cfg.BCS = bcs.NewClient(bcsURL, nil)
	}
	if reconnect {
		if cfg.BCS == nil {
			return fmt.Errorf("-reconnect requires -bcs (broker rediscovery)")
		}
		cfg.Reconnect = true
		cfg.OnConnState = func(s client.ConnState, broker string) {
			fmt.Printf("connection %s (broker %s)\n", s, broker)
		}
	}
	c, err := client.New(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("connected to broker %s as %q\n", c.BrokerURL(), subscriber)

	if err := c.Listen(); err != nil {
		return err
	}
	fs, err := c.Subscribe(channel, params)
	if err != nil {
		return err
	}
	fmt.Printf("subscribed: %s(%s) -> %s\n", channel, paramsJSON, fs)

	// Catch up on anything produced before we connected.
	if items, err := c.GetResults(fs); err == nil {
		printItems("catch-up", items)
	}

	deadline := time.After(watch)
	fmt.Printf("watching for %v ...\n", watch)
	for {
		select {
		case n := <-c.Notifications():
			items, err := c.GetResults(n.FrontendSub)
			if err != nil {
				fmt.Fprintln(os.Stderr, "retrieve:", err)
				continue
			}
			printItems("push", items)
		case <-deadline:
			fmt.Println("done watching")
			return nil
		}
	}
}

func printItems(origin string, items []broker.ResultItem) {
	for _, it := range items {
		src := "cluster"
		if it.FromCache {
			src = "cache"
		}
		rows, err := json.Marshal(it.Rows)
		if err != nil {
			rows = []byte("<unencodable>")
		}
		fmt.Printf("[%s/%s] %s (%dB): %s\n", origin, src, it.ID, it.Size, rows)
	}
}
