// Command badbcs runs the Broker Coordination Service: brokers register
// and heartbeat here; subscribers ask it for a suitable broker.
//
// Usage:
//
//	badbcs -addr :18000 -liveness 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gobad/internal/bcs"
	"gobad/internal/cliutil"
)

func main() {
	addr := flag.String("addr", ":18000", "listen address")
	liveness := flag.Duration("liveness", 30*time.Second, "heartbeat staleness bound")
	hrwSeed := flag.Uint64("hrw-seed", 0, "HRW placement seed: distinct fabrics (or a redeploy wanting a fresh shuffle) should use distinct seeds")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	debugAddr := flag.String("debug-addr", "", "debug listen address for pprof and /debug/runtime (empty = off)")
	traceOut := flag.String("trace-out", "", "write retained traces as JSON to this path on shutdown (\"-\" = stdout, empty = off)")
	flag.Parse()

	observer, err := cliutil.NewObserver("badbcs", *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "badbcs:", err)
		os.Exit(1)
	}
	stopDebug := cliutil.StartDebug(*debugAddr, observer.Logger)
	defer stopDebug()

	svc := bcs.NewService(bcs.WithLiveness(*liveness), bcs.WithSeed(*hrwSeed))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           bcs.NewServer(svc, bcs.WithObserver(observer)).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("badbcs listening on %s", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "badbcs:", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		log.Printf("badbcs: %s received, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}
	cliutil.DumpTraces(*traceOut, observer.Traces, observer.Logger)
}
