// Command badrepro regenerates the paper's evaluation artifacts: the
// simulation figures of Section V (Fig. 3a-c, 4a-c, 5a-b) and the
// prototype figures of Section VI (Fig. 7a-c), printing one text table per
// sub-figure (rows = policies, columns = cache sizes).
//
// Usage:
//
//	badrepro -fig all                 # everything (minutes at scale 20)
//	badrepro -fig fig3 -scale 10      # Fig. 3 at 1/10 population scale
//	badrepro -fig fig7 -runs 1        # prototype sweep
//	badrepro -fig fig5b               # holding-time vs TTL comparison
//
// -scale 1 runs the full Table II population (10000 subscribers, 1000
// backend subscriptions, six simulated hours — expect long runtimes).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"gobad/internal/core"
	"gobad/internal/experiments"
	"gobad/internal/metrics"
	"gobad/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: fig3|fig4|fig5a|fig5b|fig7|all")
	scale := flag.Float64("scale", 20, "population down-scale factor for the simulation figures (1 = full Table II)")
	runs := flag.Int("runs", 3, "independent runs averaged per data point (the paper uses 10)")
	seed := flag.Int64("seed", 1, "master random seed")
	csvDir := flag.String("csv", "", "also write each simulation figure as CSV into this directory")
	flag.Parse()

	if err := run(*fig, *scale, *runs, *seed, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "badrepro:", err)
		os.Exit(1)
	}
}

func run(fig string, scale float64, runs int, seed int64, csvDir string) error {
	start := time.Now()
	want := func(name string) bool { return fig == "all" || fig == name }

	var simSweep *experiments.SimSweep
	needSim := want("fig3") || want("fig4") || want("fig5a") || want("fig5b")
	if needSim {
		base := experiments.DefaultSimBase(scale)
		base.Seed = seed
		budgets := experiments.DefaultBudgets(base)
		fmt.Printf("# simulation sweep: %d subscribers, %d backend subscriptions, %v virtual, %d runs/point, budgets %s..%s\n",
			base.Subscribers, base.BackendSubs, base.Duration, runs,
			metrics.FormatBytes(float64(budgets[0])), metrics.FormatBytes(float64(budgets[len(budgets)-1])))
		var err error
		simSweep, err = experiments.RunSimSweep(experiments.SimSweepConfig{
			Base:    base,
			Budgets: budgets,
			Runs:    runs,
		})
		if err != nil {
			return err
		}
	}

	if csvDir != "" && simSweep != nil {
		if err := writeCSVs(csvDir, simSweep); err != nil {
			return err
		}
		fmt.Printf("# CSVs written to %s\n", csvDir)
	}

	if want("fig3") {
		fmt.Println(simSweep.FormatTable("Fig 3(a)", experiments.ColHitRatio))
		fmt.Println(simSweep.FormatTable("Fig 3(b)", experiments.ColHitByte))
		fmt.Println(simSweep.FormatTable("Fig 3(c)", experiments.ColMissByte))
	}
	if want("fig4") {
		fmt.Println(simSweep.FormatTable("Fig 4(a)", experiments.ColFetch))
		fmt.Printf("Fig 4(a) 'Vol' baseline: %.1f MB (produced by the data cluster, pulled by every policy)\n\n",
			simSweep.Vol/(1<<20))
		fmt.Println(simSweep.FormatTable("Fig 4(b)", experiments.ColLatency))
		fmt.Println(simSweep.FormatTable("Fig 4(c)", experiments.ColHolding))
	}
	if want("fig5a") {
		fmt.Println(simSweep.FormatTable("Fig 5(a) time-averaged", experiments.ColAvgSize))
		fmt.Println(simSweep.FormatTable("Fig 5(a) maximum", experiments.ColMaxSize))
		mid := simSweep.Budgets[len(simSweep.Budgets)/2]
		ttlCell := simSweep.Cells["TTL"][mid]
		fmt.Printf("Fig 5(a) sum(rho_i*T_i) at B=%s: %.1f MB (should track B=%.1f MB)\n\n",
			metrics.FormatBytes(float64(mid)), ttlCell.RhoTTLSum/(1<<20), float64(mid)/(1<<20))
	}
	if want("fig5b") {
		mid := simSweep.Budgets[len(simSweep.Budgets)/2]
		fmt.Printf("Fig 5(b) — per-cache |holding - TTL| / TTL at B=%s (lower = holding matches TTL)\n",
			metrics.FormatBytes(float64(mid)))
		for _, pol := range []string{"TTL", "LSC"} {
			pts := experiments.Fig5B(simSweep.Cells[pol][mid])
			corr := experiments.HoldingTTLCorrelation(pts)
			fmt.Printf("%-8s mean relative gap %.3f over %d caches\n", pol, corr, len(pts))
		}
		// A few sample points for the scatter.
		pts := experiments.Fig5B(simSweep.Cells["TTL"][mid])
		sort.Slice(pts, func(i, j int) bool { return pts[i].TTLSeconds < pts[j].TTLSeconds })
		fmt.Println("sample (ttl_s, holding_s) points for TTL policy:")
		step := len(pts)/10 + 1
		for i := 0; i < len(pts); i += step {
			fmt.Printf("  %8.1f %8.1f\n", pts[i].TTLSeconds, pts[i].HoldingMean)
		}
		fmt.Println()
	}

	if want("fig7") {
		gen := trace.DefaultGenConfig()
		gen.Seed = seed
		tr, err := trace.Generate(gen)
		if err != nil {
			return err
		}
		fmt.Printf("# prototype sweep: %d subscribers, %d activities, %v trace\n",
			gen.Subscribers, tr.Len(), gen.Duration)
		budgets := []int64{100 << 10, 500 << 10, 2 << 20, 10 << 20}
		protoSweep, err := experiments.RunPrototypeSweep(experiments.PrototypeSweepConfig{
			Trace:   tr,
			Budgets: budgets,
			Seed:    seed,
			Policies: []core.Policy{
				core.NC{}, core.LRU{}, core.LSC{}, core.TTL{},
			},
		})
		if err != nil {
			return err
		}
		fmt.Println(protoSweep.FormatTable("Fig 7(a)", "hit_ratio"))
		fmt.Println(protoSweep.FormatTable("Fig 7(b)", "latency_s"))
		fmt.Println(protoSweep.FormatTable("Fig 7(c)", "fetched_MB"))
		anyCell := protoSweep.Cells["LSC"][budgets[0]]
		fmt.Printf("subscription suppression: %d frontend -> %d backend subscriptions\n\n",
			anyCell.FrontendSubs, anyCell.BackendSubs)
	}

	if !strings.Contains("fig3 fig4 fig5a fig5b fig7 all", fig) {
		return fmt.Errorf("unknown figure %q", fig)
	}
	fmt.Printf("# done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeCSVs dumps one CSV per simulation sub-figure.
func writeCSVs(dir string, sweep *experiments.SimSweep) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := map[string]experiments.MetricColumn{
		"fig3a_hit_ratio.csv":      experiments.ColHitRatio,
		"fig3b_hit_byte.csv":       experiments.ColHitByte,
		"fig3c_miss_byte.csv":      experiments.ColMissByte,
		"fig4a_fetch.csv":          experiments.ColFetch,
		"fig4b_latency.csv":        experiments.ColLatency,
		"fig4c_holding.csv":        experiments.ColHolding,
		"fig5a_avg_cache_size.csv": experiments.ColAvgSize,
		"fig5a_max_cache_size.csv": experiments.ColMaxSize,
	}
	for name, col := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(sweep.FormatCSV(col)), 0o644); err != nil {
			return err
		}
	}
	return nil
}
