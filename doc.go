// Package gobad is a from-scratch Go reproduction of "Edge Caching for
// Enriched Notifications Delivery in Big Active Data" (Uddin &
// Venkatasubramanian, IEEE ICDCS 2018): broker-side result caching for a
// Big Active Data system, with the full substrate — a miniature
// AsterixDB-like data cluster with parameterized continuous/repetitive
// channels and enriched notifications, a distributed broker network with a
// coordination service and WebSocket push, a subscriber client library, a
// discrete-event simulator, and a benchmark harness that regenerates every
// table and figure of the paper's evaluation.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results. The benchmarks in bench_test.go regenerate the
// evaluation artifacts:
//
//	go test -bench=. -benchmem
package gobad
