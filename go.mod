module gobad

go 1.22
