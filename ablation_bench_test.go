package gobad

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - victim selection: the paper argues tail-only candidates plus a heap
//     make eviction O(log N) in the number of caches instead of O(N);
//     BenchmarkAblationVictimSelection measures both implementations.
//   - TTL weighting: eq. (7) weights TTLs by subscriber count; the uniform
//     alternative equalizes them. Measured result: EXP is nearly
//     insensitive to the choice (its expiry order is dominated by
//     insertion time either way) — evidence that the weighting does NOT
//     explain the paper's EXP-performs-worst ranking (see EXPERIMENTS.md).
//   - TTL recompute interval: measured result — the paper's 5-minute
//     choice is well tuned; recomputing every minute chases noisy rate
//     estimates and roughly doubles the budget overshoot.
//   - PUSH vs PULL notification content (Section III).
//   - subscription popularity skew: measured result — in the simulator's
//     regime (budgets far below full OFF-period coverage), skew
//     concentrates pending retrievals on few caches and deep catch-ups
//     miss more, so hit ratio falls slightly with skew; the prototype
//     regime (tiny caches, short sessions) is where Zipf popularity pays,
//     as Fig. 7 shows.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gobad/internal/core"
	"gobad/internal/experiments"
	"gobad/internal/sim"
	"gobad/internal/trace"
)

// BenchmarkAblationVictimSelection compares heap-based and linear-scan
// eviction victim selection at a realistic cache count.
func BenchmarkAblationVictimSelection(b *testing.B) {
	for _, mode := range []struct {
		name   string
		linear bool
	}{{"heap", false}, {"linear", true}} {
		for _, caches := range []int{100, 1000} {
			b.Run(fmt.Sprintf("%s/caches=%d", mode.name, caches), func(b *testing.B) {
				mgr, err := core.NewManager(core.Config{
					Policy:           core.LSCz{},
					Budget:           int64(caches) * 8 << 10, // ~half an object per cache
					LinearVictimScan: mode.linear,
					Fetcher: core.FetcherFunc(func(context.Context, string, time.Duration, time.Duration, bool) ([]*core.Object, error) {
						return nil, nil
					}),
				})
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < caches; i++ {
					mgr.Subscribe(fmt.Sprintf("c%04d", i), "s", 0)
				}
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					id := fmt.Sprintf("c%04d", n%caches)
					obj := &core.Object{
						ID:        fmt.Sprintf("o%d", n),
						Timestamp: time.Duration(n+1) * time.Millisecond,
						Size:      16 << 10,
					}
					if err := mgr.Put(id, obj, time.Duration(n)*time.Millisecond); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationEXPWeighting runs the EXP policy under both TTL
// weightings and reports both hit ratios; the measured gap is small.
func BenchmarkAblationEXPWeighting(b *testing.B) {
	budget := experiments.DefaultBudgets(experiments.DefaultSimBase(50))[2]
	var bySubs, uniform float64
	for n := 0; n < b.N; n++ {
		for _, w := range []struct {
			name      string
			weighting core.TTLWeighting
		}{{"subscribers", core.WeightBySubscribers}, {"uniform", core.WeightUniform}} {
			cfg := experiments.DefaultSimBase(50)
			cfg.Policy = core.EXP{}
			cfg.CacheBudget = budget
			cfg.TTL.Weighting = w.weighting
			res, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if w.weighting == core.WeightBySubscribers {
				bySubs = res.Metrics.HitRatio
			} else {
				uniform = res.Metrics.HitRatio
			}
		}
	}
	b.ReportMetric(bySubs, "EXP_subs_hit")
	b.ReportMetric(uniform, "EXP_uniform_hit")
}

// BenchmarkAblationTTLRecompute compares TTL recompute intervals with the
// same warm-up DefaultTTL, isolating the interval effect: frequent
// recomputation amplifies rate-estimate noise and inflates the overshoot.
func BenchmarkAblationTTLRecompute(b *testing.B) {
	budget := experiments.DefaultBudgets(experiments.DefaultSimBase(50))[2]
	intervals := []time.Duration{time.Minute, 5 * time.Minute}
	overshoot := make([]float64, len(intervals))
	for n := 0; n < b.N; n++ {
		for i, interval := range intervals {
			cfg := experiments.DefaultSimBase(50)
			cfg.Policy = core.TTL{}
			cfg.CacheBudget = budget
			cfg.TTL.RecomputeInterval = interval
			cfg.TTL.DefaultTTL = time.Minute
			res, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			overshoot[i] = res.Metrics.AvgCacheSize / float64(budget)
		}
	}
	b.ReportMetric(overshoot[0], "avg_over_B_1m")
	b.ReportMetric(overshoot[1], "avg_over_B_5m")
}

// BenchmarkAblationPushVsPull replays the same trace under the PULL and
// PUSH notification models and reports the broker's cluster-fetch volume:
// PUSH eliminates the pull round trips for fresh results.
func BenchmarkAblationPushVsPull(b *testing.B) {
	gen := trace.DefaultGenConfig()
	gen.Subscribers = 100
	gen.UniqueSubscriptions = 600
	gen.Duration = 20 * time.Minute
	tr, err := trace.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	var pullMB, pushMB float64
	for n := 0; n < b.N; n++ {
		for _, push := range []bool{false, true} {
			rig, err := experiments.NewRig(experiments.RigConfig{
				Policy:      core.LSC{},
				CacheBudget: 1 << 20,
				Seed:        1,
				PushModel:   push,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := trace.Play(tr, rig); err != nil {
				b.Fatal(err)
			}
			fetched := rig.Broker().Stats().FetchBytes.Value() / (1 << 20)
			if push {
				pushMB = fetched
			} else {
				pullMB = fetched
			}
		}
	}
	b.ReportMetric(pullMB, "PULL_fetchMB")
	b.ReportMetric(pushMB, "PUSH_fetchMB")
}

// BenchmarkAblationZipfSkew varies subscription popularity skew and
// reports the measured hit ratios (see the package comment for the
// direction).
func BenchmarkAblationZipfSkew(b *testing.B) {
	budget := experiments.DefaultBudgets(experiments.DefaultSimBase(50))[1]
	skews := []float64{0, 0.9, 1.3}
	hits := make([]float64, len(skews))
	for n := 0; n < b.N; n++ {
		for i, s := range skews {
			cfg := experiments.DefaultSimBase(50)
			cfg.Policy = core.LSC{}
			cfg.CacheBudget = budget
			cfg.ZipfS = s
			res, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			hits[i] = res.Metrics.HitRatio
		}
	}
	b.ReportMetric(hits[0], "uniform_hit")
	b.ReportMetric(hits[1], "zipf0.9_hit")
	b.ReportMetric(hits[2], "zipf1.3_hit")
}
