GO ?= go

.PHONY: build vet lint test race bench bench-json bench-smoke bench-guard soak fuzz-smoke chaos crash-matrix verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = vet plus staticcheck when it is installed (skipped gracefully
# otherwise, so lint never needs network access).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# Race tier: the packages with concurrent cache paths (sharded manager,
# singleflight, broker handlers), the lock-free measurement and
# exposition primitives — ./internal/obs/... includes the span recorder's
# concurrent ring — and the cluster's group-evaluation engine
# (./internal/bdms/...), whose snapshot-handoff eval pipeline races
# subscribe/unsubscribe against in-flight evaluations. Kept narrow so it
# stays fast enough to run on every change.
race:
	$(GO) test -race ./internal/core/... ./internal/broker/... ./internal/metrics/... ./internal/obs/... ./internal/httpx/... ./internal/bdms/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Delivery-pipeline benchmarks as a committed JSON artifact. The
# before/after pair is in the run itself: BenchmarkFanoutLegacySync is the
# pre-pipeline dispatch loop, BenchmarkFanout the async encode-once one.
bench-json:
	$(GO) test -run=NONE -bench='BenchmarkFanout|BenchmarkObjectsInRange|BenchmarkWritePrepared|BenchmarkWriteMessage' \
		-benchmem -benchtime=200x -count=3 ./internal/broker ./internal/wsock ./internal/core \
		| $(GO) run ./cmd/benchjson -note "Fanout is the pooled-writer interest-keyed hub (1000 drained subscribers plus one stalled); goroutine-per-session hub before the pool: 201824ns/57allocs, p99 595609ns. LegacySync is the original synchronous per-subscriber dispatch loop (drained only; it cannot run with a stalled one). objectsInRange pre-change: span=1 4513ns/1alloc, span=16 4963ns/5allocs, span=256 6647ns/9allocs." \
		> BENCH_fanout.json
	$(GO) test -run=NONE -bench='BenchmarkIngestEval' -benchmem -count=3 ./internal/bdms \
		| $(GO) run ./cmd/benchjson -note "Grouped channel evaluation: evals/rec equals signature groups G, not subscriptions S. Per-subscription engine before grouping (same grid, same body): subs=1000/sigs=10 440818ns/op 3118allocs, subs=10000/sigs=100 2476940ns/op 21118allocs, subs=10000/sigs=1000 2363355ns/op 20125allocs — evaluations per record equalled S." \
		> BENCH_eval.json

# Full soak run: stands up 10k then 100k simulated WebSocket sessions with
# Zipf-skewed interest and 10% churn, measures RSS/session, dispatch
# latency percentiles and allocs/op, and regenerates the committed
# BENCH_soak.json baseline that bench-guard gates against.
soak:
	$(GO) run ./cmd/badsoak -sessions 10000,100000 -out BENCH_soak.json

# CI smoke: compile and run every delivery-path benchmark once, so a broken
# benchmark is caught without paying for a full measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./internal/broker ./internal/wsock ./internal/core

# Regression guard over both committed baselines. The fan-out benchmark
# (best of five runs, damping runner noise) is compared against
# BENCH_fanout.json; a fresh CI-sized 10k-session soak is compared against
# BENCH_soak.json's 10k entry. Every guarded metric is printed as a diff
# row and all failures are reported together. allocs/op for the fanout
# guard uses an absolute allowance (baseline is 0); latency tolerances are
# wide because single runs on shared runners are noisy — the gate exists
# to catch the order-of-magnitude regressions (e.g. a return to
# per-session writer goroutines), not scheduler jitter.
bench-guard:
	$(GO) run ./cmd/badsoak -sessions 10000 -q -out .soak_check.json
	{ $(GO) test -run=NONE -bench='^BenchmarkFanout$$' -benchtime=200x -count=5 ./internal/broker; \
	  $(GO) test -run=NONE -bench='^BenchmarkIngestEval/subs=10000/sigs=100$$' -count=3 ./internal/bdms; } \
		| $(GO) run ./cmd/benchguard \
			-guard 'baseline=BENCH_fanout.json;bench=BenchmarkFanout;source=stdin;metrics=ns/op:0.20,p99-dispatch-ns:0.50,allocs/op:2' \
			-guard 'baseline=BENCH_soak.json;bench=Soak/sessions=10000;source=.soak_check.json;metrics=p99-dispatch-ns:1.0,allocs/op:0.5,rss-bytes/session:0.35' \
			-guard 'baseline=BENCH_eval.json;bench=BenchmarkIngestEval/subs=10000/sigs=100;source=stdin;metrics=ns/op:0.35,evals/rec:0.01'
	@rm -f .soak_check.json

# Fuzz smoke: a short bounded run of each native fuzz target (resume-token
# and traceparent parsing, parameter-signature canonicalization, WAL
# crash-tail recovery, cache-snapshot decoding) so CI exercises the corpora
# plus a few seconds of mutation without turning into a fuzzing farm.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz='^FuzzParseResumeToken$$' -fuzztime=10s ./internal/broker
	$(GO) test -run=NONE -fuzz='^FuzzParseTraceparent$$' -fuzztime=10s ./internal/obs
	$(GO) test -run=NONE -fuzz='^FuzzParamSignature$$' -fuzztime=10s ./internal/bdms
	$(GO) test -run=NONE -fuzz='^FuzzWALRecord$$' -fuzztime=10s ./internal/bdms
	$(GO) test -run=NONE -fuzz='^FuzzCacheSnapshot$$' -fuzztime=10s ./internal/bdms

# Chaos tier: the fault-injection harness and every resilience path it
# drives — retries/breakers (httpx), client wiring, webhook redelivery and
# dead-callback reroute (bdms), stale-serve (core, broker), broker-kill
# failover, rolling drain and resume (client, broker), BCS liveness and
# restart recovery (bcs), the kill-the-cluster simulation scenario, and
# the fabric scenarios — HRW rebalance-on-join with zero loss (client),
# peer lookup under a draining/cold/dead owner (broker), the multi-broker
# cooperative-caching sim (sim), and the durability drills — cluster
# kill -9 mid-batch with byte-identical replay (bdms) and broker restart
# under 1k resuming sessions with a warm cache handoff (broker).
# Runs race-enabled, twice and with a shuffled test order, because these
# tests assert exact deterministic counts: a flake here is a real ordering
# bug, and -shuffle=on surfaces inter-test order dependence that a fixed
# order would mask.
chaos:
	$(GO) test -race -count=2 -shuffle=on \
		./internal/faults/... ./internal/httpx/... ./internal/bdms/... \
		./internal/core/... ./internal/broker/... ./internal/bcs/... \
		./internal/client/... ./internal/sim/...

# Exhaustive crash matrix: replays the durability store from a crash at
# EVERY byte boundary of the WAL (the default test run samples ~16 cut
# points to stay fast). Each cut must recover to a clean prefix of the
# full history.
crash-matrix:
	CRASH_MATRIX=full $(GO) test -run='^TestStoreCrashMatrix$$' -v ./internal/bdms

# Everything CI runs: build, vet, full test suite, then the race tier.
# The chaos tier is its own CI step (it re-runs several suites race-enabled
# with -count=2, which would double up here).
verify: build vet test race
