GO ?= go

.PHONY: build vet lint test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = vet plus staticcheck when it is installed (skipped gracefully
# otherwise, so lint never needs network access).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# Race tier: the packages with concurrent cache paths (sharded manager,
# singleflight, broker handlers) plus the lock-free measurement and
# exposition primitives. Kept narrow so it stays fast enough to run on
# every change.
race:
	$(GO) test -race ./internal/core/... ./internal/broker/... ./internal/metrics/... ./internal/obs/... ./internal/httpx/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Everything CI runs: build, vet, full test suite, then the race tier.
verify: build vet test race
