GO ?= go

.PHONY: build vet test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race tier: the packages with concurrent cache paths (sharded manager,
# singleflight, broker handlers). Kept narrow so it stays fast enough to
# run on every change.
race:
	$(GO) test -race ./internal/core/... ./internal/broker/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Everything CI runs: build, vet, full test suite, then the race tier.
verify: build vet test race
