GO ?= go

.PHONY: build vet lint test race bench bench-json bench-smoke bench-guard chaos verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = vet plus staticcheck when it is installed (skipped gracefully
# otherwise, so lint never needs network access).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# Race tier: the packages with concurrent cache paths (sharded manager,
# singleflight, broker handlers) plus the lock-free measurement and
# exposition primitives — ./internal/obs/... includes the span recorder's
# concurrent ring. Kept narrow so it stays fast enough to run on every
# change.
race:
	$(GO) test -race ./internal/core/... ./internal/broker/... ./internal/metrics/... ./internal/obs/... ./internal/httpx/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Delivery-pipeline benchmarks as a committed JSON artifact. The
# before/after pair is in the run itself: BenchmarkFanoutLegacySync is the
# pre-pipeline dispatch loop, BenchmarkFanout the async encode-once one.
bench-json:
	$(GO) test -run=NONE -bench='BenchmarkFanout|BenchmarkObjectsInRange|BenchmarkWritePrepared|BenchmarkWriteMessage' \
		-benchmem -benchtime=200x ./internal/broker ./internal/wsock ./internal/core \
		| $(GO) run ./cmd/benchjson -note "LegacySync is the pre-change dispatch loop (1000 drained subscribers; it cannot run with a stalled one). Fanout adds a stalled subscriber on top. objectsInRange pre-change: span=1 4513ns/1alloc, span=16 4963ns/5allocs, span=256 6647ns/9allocs." \
		> BENCH_fanout.json

# CI smoke: compile and run every delivery-path benchmark once, so a broken
# benchmark is caught without paying for a full measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./internal/broker ./internal/wsock ./internal/core

# Regression guard: the fan-out benchmark (default trace sampling) must stay
# within 5% of the committed baseline — tracing is designed to cost nothing
# on the untraced hot path, and this is where that claim is enforced. The
# guard compares the best of five runs, which damps runner noise without
# hiding a real per-marker regression.
bench-guard:
	$(GO) test -run=NONE -bench='^BenchmarkFanout$$' -benchtime=200x -count=5 ./internal/broker \
		| $(GO) run ./cmd/benchguard -baseline BENCH_fanout.json -bench BenchmarkFanout -tolerance 0.05

# Chaos tier: the fault-injection harness and every resilience path it
# drives — retries/breakers (httpx), client wiring, webhook redelivery and
# dead-callback reroute (bdms), stale-serve (core, broker), broker-kill
# failover, rolling drain and resume (client, broker), BCS liveness and
# restart recovery (bcs), the kill-the-cluster simulation scenario, and
# the fabric scenarios — HRW rebalance-on-join with zero loss (client),
# peer lookup under a draining/cold/dead owner (broker), and the
# multi-broker cooperative-caching sim (sim).
# Runs race-enabled and twice, because these tests assert exact
# deterministic counts: a flake here is a real ordering bug.
chaos:
	$(GO) test -race -count=2 \
		./internal/faults/... ./internal/httpx/... ./internal/bdms/... \
		./internal/core/... ./internal/broker/... ./internal/bcs/... \
		./internal/client/... ./internal/sim/...

# Everything CI runs: build, vet, full test suite, then the race tier.
# The chaos tier is its own CI step (it re-runs several suites race-enabled
# with -count=2, which would double up here).
verify: build vet test race
