GO ?= go

.PHONY: build vet lint test race bench chaos verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = vet plus staticcheck when it is installed (skipped gracefully
# otherwise, so lint never needs network access).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# Race tier: the packages with concurrent cache paths (sharded manager,
# singleflight, broker handlers) plus the lock-free measurement and
# exposition primitives. Kept narrow so it stays fast enough to run on
# every change.
race:
	$(GO) test -race ./internal/core/... ./internal/broker/... ./internal/metrics/... ./internal/obs/... ./internal/httpx/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Chaos tier: the fault-injection harness and every resilience path it
# drives — retries/breakers (httpx), client wiring and webhook redelivery
# (bdms), stale-serve (core, broker) and the kill-the-cluster simulation
# scenario. Runs race-enabled and twice, because these tests assert exact
# deterministic counts: a flake here is a real ordering bug.
chaos:
	$(GO) test -race -count=2 \
		./internal/faults/... ./internal/httpx/... ./internal/bdms/... \
		./internal/core/... ./internal/broker/... ./internal/sim/...

# Everything CI runs: build, vet, full test suite, then the race tier.
# The chaos tier is its own CI step (it re-runs several suites race-enabled
# with -count=2, which would double up here).
verify: build vet test race
